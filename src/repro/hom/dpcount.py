"""Bag-table dynamic programming over nice tree decompositions.

The second counting backend (DESIGN.md §9).  Where the backtracking
counter of :mod:`repro.hom.engine` explores assignments one variable at
a time — worst-case exponential in the number of source variables —
this module counts ``|hom(A, B)|`` in ``O(poly · |B|^{w+1})`` for a
source of treewidth ``w`` by sweeping a nice tree decomposition
(:mod:`repro.hom.decompose`) bottom-up:

* **leaf** — the empty partial assignment, multiplicity 1;
* **introduce v** — extend every table key by each candidate value of
  ``v`` (positional candidate sets, exactly the ones the backtracking
  counter prunes with), filtering by the facts *anchored* at this node;
* **forget v** — project ``v`` out, summing multiplicities;
* **join** — multiply tables pointwise on the shared bag (extensions
  below the two children are disjoint by the running-intersection
  property, so the product is exact).

Each fact is anchored at exactly one introduce node whose bag contains
all its terms (such a node always exists: ``make_nice`` forgets before
it introduces between adjacent bags, so any in-bag term set survives
to the introduce of its last term).  Checking a fact once suffices —
every counted assignment restricts to that node's bag — and anchoring
each fact once keeps the inner loop minimal.

The tables themselves are *packed and columnar* (DESIGN.md §12): a bag
assignment is one int key (``Σ value_i << (i · key_bits)``), candidate
values are bitset domains, and anchored binary facts are compiled into
mask filters (:class:`DPPlan` ``intro_ops``) applied per table entry
instead of per candidate value.  Targets whose domain exceeds the
bitset cap run the original tuple-keyed kernel, kept verbatim as
:func:`_count_plan_dp_sets`.

Nullary facts, arity mismatches and isolated source elements are
handled by the same preamble the backtracking counter uses
(:func:`repro.hom.engine._plan_preamble`), so the two backends are
bit-identical by construction on everything outside the core search —
and property-tested bit-identical on the core
(``tests/test_dpcount.py``).  Disconnected sources need no special
case here: a decomposition of a disconnected Gaifman graph is a forest
chained into one tree, and the DP multiplies the components' counts
through its join/forget algebra; the engine still factors into
components *first* (canonical memoization happens per component), so
this path usually sees connected sources.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StructureError
from repro.faults.budget import active_budget, injected_exceeded
from repro.faults.inject import should_inject
from repro.obs.trace import span
from repro.structures.interned import bit_indices
from repro.structures.structure import Structure
from repro.hom.decompose import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    NiceDecomposition,
    decompose_interned,
    gaifman_graph_interned,
    make_nice,
)

_EMPTY: frozenset = frozenset()

# Classified introduce-node check kinds (see DPPlan.intro_ops).
PAIR, LOOP, GENERAL = 1, 2, 3

# Module-wide packed-table observability (same scoping as the intern /
# bitset counters): the largest packed bag table any DP in this
# process materialized — the number an operator compares against
# |B|^{w+1} to see how hard the tables actually got.
_DP_PACKED = {"dp_peak_entries": 0, "dp_fallbacks": 0}


def dp_packed_stats():
    """Counters of the packed-DP kernel (merged into ``bitset_stats``)."""
    return dict(_DP_PACKED)


class DPPlan:
    """A compiled DP schedule for one source structure.

    Built once per source (cached on the
    :class:`~repro.hom.engine.SourcePlan`) and reused across every
    target: ``nodes`` come from the nice decomposition, ``checks[i]``
    holds the facts anchored at introduce node ``i`` as
    ``(relation, term_positions)`` pairs with positions resolved into
    the node's bag order, and ``size_histogram`` maps bag size to node
    count — all a cost model needs (`Σ count · |B|^size`).

    ``intro_ops[i]`` is the bit-parallel compilation of ``checks[i]``,
    classified once per plan (target-independent) so the packed DP
    never re-derives fact shapes inside its inner loop:

    * ``(PAIR, relation, i, j, child_pos)`` — a binary fact joining the
      introduced variable (tuple slot ``j``) to one already-keyed bag
      variable (tuple slot ``i``, at packed position ``child_pos`` of
      the *child* key): enforced by ANDing the candidate mask with the
      target's ``pair_bits(relation, i, j)`` row — no per-value test;
    * ``(LOOP, relation)`` — a binary self-loop fact on the introduced
      variable: one static AND with the target's loop mask;
    * ``(GENERAL, relation, term_positions)`` — everything else
      (arity ≥ 3, or a fact anchored here without mentioning the
      introduced variable): per-extension membership test against the
      relation's packed rows.

    Unary anchored facts are dropped outright: the preamble already
    intersects every variable's base domain with each positional
    candidate set, so a one-position membership test can never fail on
    a value that survived the preamble.
    """

    __slots__ = ("nice", "checks", "intro_ops", "width", "size_histogram")

    def __init__(self, nice: NiceDecomposition,
                 checks: Tuple[Tuple[Tuple[str, Tuple[int, ...]], ...], ...]):
        self.nice = nice
        self.checks = checks
        self.width = nice.width
        histogram: Dict[int, int] = {}
        for node in nice.nodes:
            size = len(node.order)
            histogram[size] = histogram.get(size, 0) + 1
        self.size_histogram = histogram
        intro_ops: List[tuple] = []
        for node, anchored in zip(nice.nodes, checks):
            if node.kind != INTRODUCE or not anchored:
                intro_ops.append(())
                continue
            var_pos = node.var_pos
            ops: List[tuple] = []
            for relation, term_positions in anchored:
                var_slots = [t for t, bag_pos in enumerate(term_positions)
                             if bag_pos == var_pos]
                arity = len(term_positions)
                if arity == 1:
                    continue  # folded into the base domain: see above
                if arity == 2 and len(var_slots) == 1:
                    j = var_slots[0]
                    i = 1 - j
                    other = term_positions[i]
                    child_pos = other - 1 if other > var_pos else other
                    ops.append((PAIR, relation, i, j, child_pos))
                elif arity == 2 and len(var_slots) == 2:
                    ops.append((LOOP, relation))
                else:
                    ops.append((GENERAL, relation, term_positions))
            intro_ops.append(tuple(ops))
        self.intro_ops = tuple(intro_ops)

    def __repr__(self) -> str:
        return (f"DPPlan(nodes={len(self.nice.nodes)}, "
                f"width={self.width})")


def build_dp_plan(source: Structure, plan,
                  heuristic: str = "min-fill") -> DPPlan:
    """Compile the DP schedule for ``source``.

    ``plan`` is the source's :class:`~repro.hom.engine.SourcePlan`
    (duck-typed: only ``plan.inter`` and ``plan.facts`` are read).
    The decomposition runs over the *interned* Gaifman graph — bags,
    nice-node orders and DP table keys are all dense ints — and is
    validated before use (once per source, cheap next to the DP it
    enables); every fact must find an anchor, so a heuristic bug
    raises :class:`~repro.errors.StructureError` instead of silently
    corrupting counts.
    """
    with span("plan.dp"):
        decomposition = decompose_interned(plan.inter, heuristic=heuristic)
        decomposition.validate_interned(plan.inter)
        nice = make_nice(decomposition,
                         adjacency=gaifman_graph_interned(plan.inter))
    remaining = list(enumerate(plan.facts))
    binary = [(relation, terms) for relation, terms in plan.facts
              if len(terms) == 2]
    checks: List[Tuple[Tuple[str, Tuple[int, ...]], ...]] = []
    for node in nice.nodes:
        if node.kind != INTRODUCE:
            checks.append(())
            continue
        bag = set(node.order)
        position = {term: i for i, term in enumerate(node.order)}
        anchored = []
        kept = []
        for entry in remaining:
            _, (relation, terms) = entry
            if all(term in bag for term in terms):
                anchored.append(
                    (relation, tuple(position[term] for term in terms)))
            else:
                kept.append(entry)
        remaining = kept
        # Redundant anchoring: every binary fact touching the
        # introduced variable whose terms sit in this bag is filtered
        # here too, not only at its mandatory anchor.  Filters are
        # idempotent, so re-checking is sound — and it turns the
        # product-table introduces of join-side branches (bag
        # variables re-introduced where their facts anchored in a
        # sibling branch) into constrained ones, shrinking every table
        # the join later intersects.
        seen = set(anchored)
        for relation, terms in binary:
            if node.var in terms and all(term in bag for term in terms):
                entry = (relation, tuple(position[term] for term in terms))
                if entry not in seen:
                    seen.add(entry)
                    anchored.append(entry)
        checks.append(tuple(anchored))
    if remaining:
        raise StructureError(
            f"decomposition anchored no bag for facts "
            f"{[str(relation) for _, (relation, _) in remaining]}; "
            f"invariants violated")
    return DPPlan(nice, tuple(checks))


# Resolved introduce-program tags (see _resolved_intro).  The _F
# variants are introduce nodes fused with the forget node that
# immediately consumes them: the intermediate table is never built.
_R_EMPTY, _R_FREE, _R_SINGLE, _R_DOUBLE, _R_GENERIC = 0, 1, 2, 3, 4
_R_FREE_F, _R_SINGLE_F, _R_DOUBLE_F = 5, 6, 7


class _SpreadMap(dict):
    """A spread dict returning the empty tuple on missing field values.

    Lets the sweep probe spreads by plain subscript — the same access
    pattern as the dense-list spreads used for small domains — without
    a per-entry ``.get`` method call.
    """

    __slots__ = ()

    def __missing__(self, key):
        return ()


def _as_dense(spread: dict, size: int):
    """The spread as a dense list when the probe range is small.

    List subscript beats even an int-keyed dict probe; holes hold the
    empty tuple so the sweep needs no miss branch.  Large probe ranges
    keep the ``_SpreadMap`` (same subscript protocol, sparse storage).
    """
    if size > 4096:
        return spread
    dense = [()] * size
    for field_value, values in spread.items():
        dense[field_value] = values
    return dense


def _resolved_intro(plan, index):
    """The per-(plan, target) resolved DP program.

    Returns ``(programs, decided, free_factor)``: ``decided`` short-
    circuits the whole count when the shared preamble already knows the
    answer (arity mismatch, empty base domain, ...), otherwise
    ``programs`` holds one tuple per nice node (``None`` for
    non-introduce nodes) with everything the sweep needs pre-bound:
    candidate masks folded with loop masks, pair projections resolved
    against the target, single- and double-filter cases pre-joined into
    ``field value(s) -> pre-shifted extension values`` spreads, the key
    geometry (shift/below/raise_by and the top-position flag) baked in,
    and introduce nodes fused with the forget that immediately consumes
    them.  All of it is a pure function of ``(plan, index.structure)``,
    so the entry is cached on the plan next to the base domains and the
    strategy verdicts — a warm count never re-runs the preamble.
    """
    from repro.hom.engine import _plan_preamble

    cache = plan._dp_resolved
    cache_key = index.structure
    cached = cache.get(cache_key)
    if cached is not None:
        cache.move_to_end(cache_key)
        return cached
    decided, domains, free_factor = _plan_preamble(plan, index, False)
    if decided is not None:
        entry = (None, decided, free_factor)
        cache[cache_key] = entry
        if len(cache) > plan._BASE_DOMAIN_CACHE:
            cache.popitem(last=False)
        return entry
    dp = plan.dp_plan()
    kb = index.key_bits
    nodes = dp.nice.nodes
    resolved: List[Optional[tuple]] = []
    for position, (node, anchored) in enumerate(zip(nodes, dp.intro_ops)):
        if node.kind != INTRODUCE:
            resolved.append(None)
            continue
        # Fuse with an immediately-following forget: the forget splice
        # distributes over OR of disjoint packed fields, so extension
        # values are pre-spliced here and the sweep splices each child
        # head once — the intermediate table is never materialized.
        # The general splice formula is correct even when the
        # forgotten field is topmost (the high part shifts to zero).
        splice = None
        follower = nodes[position + 1] if position + 1 < len(nodes) else None
        if follower is not None and follower.kind == FORGET \
                and follower.children == (position,):
            g_shift = follower.var_pos * kb
            g_below = (1 << g_shift) - 1
            g_above = g_shift + kb

            def splice(x, g_below=g_below, g_shift=g_shift, g_above=g_above):
                return (x & g_below) | ((x >> g_above) << g_shift)
        var_pos = node.var_pos
        shift = var_pos * kb
        below = (1 << shift) - 1
        raise_by = shift + kb
        # Introducing at the topmost bag position leaves every child
        # field in place: no key surgery per entry.
        top = var_pos == len(node.order) - 1
        candidates = domains[node.var]
        pair_filters = []
        general = []
        for op in anchored:
            tag = op[0]
            if tag == PAIR:
                pair_filters.append(
                    (index.pair_bits(op[1], op[2], op[3]), op[4] * kb))
            elif tag == LOOP:
                candidates &= index.loop_mask(op[1])
            else:  # GENERAL
                general.append((index.packed_rows(op[1]), op[2]))
        if not candidates:
            resolved.append((_R_EMPTY,))
        elif not general and not pair_filters:
            values = tuple(v << shift for v in bit_indices(candidates))
            if splice is None:
                resolved.append((_R_FREE, values,
                                 below, shift, raise_by, top))
            else:
                resolved.append((_R_FREE_F,
                                 tuple(splice(v) for v in values),
                                 below, shift, raise_by, top,
                                 g_below, g_shift, g_above))
        elif not general and len(pair_filters) == 1:
            # Pre-join the projection rows with the candidate mask:
            # field value -> pre-shifted extension values.
            fdict, f_shift = pair_filters[0]
            spread = _SpreadMap()
            for field_value, row_mask in fdict.items():
                row_mask &= candidates
                if row_mask:
                    vals = tuple(v << shift for v in bit_indices(row_mask))
                    spread[field_value] = vals if splice is None \
                        else tuple(splice(v) for v in vals)
            spread = _as_dense(spread, index.domain_size)
            if splice is None:
                resolved.append((_R_SINGLE, spread, f_shift,
                                 below, shift, raise_by, top))
            else:
                resolved.append((_R_SINGLE_F, spread, f_shift,
                                 below, shift, raise_by, top,
                                 g_below, g_shift, g_above))
        elif not general and len(pair_filters) == 2:
            # Two binary facts join the new variable to two keyed bag
            # fields (interior grid vertices): pre-join BOTH projections
            # over all field-value pairs, keyed by the packed pair
            # (v1 << key_bits) | v2 — one dict probe per child entry
            # replaces two lookups and two ANDs.
            (fd1, s1), (fd2, s2) = pair_filters
            spread = _SpreadMap()
            for v1, m1 in fd1.items():
                m1 &= candidates
                if not m1:
                    continue
                for v2, m2 in fd2.items():
                    joint = m1 & m2
                    if joint:
                        vals = tuple(v << shift for v in bit_indices(joint))
                        spread[(v1 << kb) | v2] = vals if splice is None \
                            else tuple(splice(v) for v in vals)
            spread = _as_dense(
                spread, ((index.domain_size - 1) << kb) + index.domain_size)
            if splice is None:
                resolved.append((_R_DOUBLE, spread, s1, s2,
                                 below, shift, raise_by, top))
            else:
                resolved.append((_R_DOUBLE_F, spread, s1, s2,
                                 below, shift, raise_by, top,
                                 g_below, g_shift, g_above))
        else:
            getters = tuple((fd.get, fs) for fd, fs in pair_filters)
            # The trailing dict is the node's allowed-mask -> pre-shifted
            # values memo; mutable on purpose, it persists with the
            # cached program so bit scans amortize across counts.
            resolved.append((_R_GENERIC, candidates, getters,
                             tuple(general), below, shift, raise_by, top,
                             {}))
    entry = (tuple(resolved), None, free_factor)
    cache[cache_key] = entry
    if len(cache) > plan._BASE_DOMAIN_CACHE:
        cache.popitem(last=False)
    return entry


def _budgeted(items, budget):
    """Wrap a bag-table iteration with periodic budget charges.

    Only installed when a budget is active (the no-budget sweep keeps
    its bare dict iteration): one int AND per entry, the Budget
    consult amortized over a 256-entry stride — the DP twin of the
    backtracking kernels' 1024-node stride (DESIGN.md §14).
    """
    n = 0
    for item in items:
        n += 1
        if not n & 255:
            budget.charge(256)
        yield item


def count_plan_dp(plan, index) -> int:
    """``|hom| `` of a compiled source plan into a compiled target.

    ``plan`` is a :class:`~repro.hom.engine.SourcePlan`, ``index`` a
    :class:`~repro.hom.engine.TargetIndex`.  Semantics are identical to
    :func:`repro.hom.engine._count` with ``first_only=False``.

    This is the *packed columnar* kernel: every bag table is a flat
    ``dict[int, int]`` whose keys pack the bag assignment as
    ``Σ value_i << (i · key_bits)`` (``key_bits`` from the target's
    interned form), candidate values live in bitset domains, and the
    introduce transition runs the per-(plan, target) resolved programs
    of :func:`_resolved_intro` — binary facts become one pre-joined
    dict probe per table entry instead of a per-value membership test.
    Targets beyond the bitset domain cap fall back to the original
    tuple-keyed kernel (:func:`_count_plan_dp_sets`), kept verbatim as
    fallback and ablation reference.
    """
    from repro.hom.engine import _BITSET_COUNTERS, _BITSET_MAX_DOMAIN

    if should_inject("engine.step"):
        raise injected_exceeded()
    if index.domain_size > _BITSET_MAX_DOMAIN:
        _BITSET_COUNTERS["fallbacks"] += 1
        _DP_PACKED["dp_fallbacks"] += 1
        return _count_plan_dp_sets(plan, index)
    resolved, decided, free_factor = _resolved_intro(plan, index)
    if decided is not None:
        return decided
    budget = active_budget()

    dp = plan.dp_plan()
    nodes = dp.nice.nodes
    kb = index.key_bits
    vmask = (1 << kb) - 1
    tables: List[Optional[Dict[int, int]]] = [None] * len(nodes)
    peak = 0
    for position, node in enumerate(nodes):
        if tables[position] is not None:
            # A fused introduce+forget predecessor already produced
            # this forget node's table.
            continue
        kind = node.kind
        if kind == LEAF:
            tables[position] = {0: 1}
            continue
        if kind == JOIN:
            left_at, right_at = node.children
            left, right = tables[left_at], tables[right_at]
            tables[left_at] = tables[right_at] = None
            if len(left) > len(right):
                left, right = right, left
            joined: Dict[int, int] = {}
            right_get = right.get
            left_items = left.items() if budget is None \
                else _budgeted(left.items(), budget)
            follower = nodes[position + 1] \
                if position + 1 < len(nodes) else None
            if follower is not None and follower.kind == FORGET \
                    and follower.children == (position,):
                # Fused join+forget: the joined table is never
                # materialized — matched entries project and
                # accumulate straight into the forget's table.
                shift = follower.var_pos * kb
                below = (1 << shift) - 1
                above = shift + kb
                joined_get = joined.get
                for key, count in left_items:
                    other = right_get(key)
                    if other is not None:
                        shrunk = (key & below) | ((key >> above) << shift)
                        accumulated = joined_get(shrunk)
                        product = count * other
                        joined[shrunk] = product if accumulated is None \
                            else accumulated + product
                tables[position + 1] = joined
            else:
                for key, count in left_items:
                    other = right_get(key)
                    if other is not None:
                        joined[key] = count * other
                tables[position] = joined
            continue
        child_at = node.children[0]
        child = tables[child_at]
        tables[child_at] = None
        entries = child.items() if budget is None \
            else _budgeted(child.items(), budget)
        out: Dict[int, int] = {}
        store_at = position
        if kind == FORGET:
            var_pos = node.var_pos
            shift = var_pos * kb
            below = (1 << shift) - 1
            out_get = out.get
            if var_pos == len(node.order):
                # The forgotten variable holds the topmost packed field
                # of the child key: projection is a single mask.
                for key, count in entries:
                    shrunk = key & below
                    accumulated = out_get(shrunk)
                    out[shrunk] = count if accumulated is None \
                        else accumulated + count
            else:
                above = shift + kb
                for key, count in entries:
                    shrunk = (key & below) | ((key >> above) << shift)
                    accumulated = out_get(shrunk)
                    out[shrunk] = count if accumulated is None \
                        else accumulated + count
        else:  # INTRODUCE
            op = resolved[position]
            tag = op[0]
            if tag == _R_FREE:
                # Unconstrained introduce: every child entry grows by
                # the same pre-shifted candidate values.
                _, values, below, shift, raise_by, top = op
                if top:
                    # (key, value) -> grown is injective: plain stores.
                    out = {key | shifted: count
                           for key, count in child.items()
                           for shifted in values}
                else:
                    for key, count in entries:
                        head = (key & below) | ((key >> shift) << raise_by)
                        for shifted in values:
                            out[head | shifted] = count
            elif tag == _R_SINGLE:
                # One binary fact joins the new variable to one keyed
                # bag field (the common introduce on grids and chains):
                # one pre-joined dict probe per child entry — no
                # per-entry AND, no per-entry bit scan.
                _, spread, f_shift, below, shift, raise_by, top = op
                if top:
                    for key, count in entries:
                        for shifted in spread[(key >> f_shift) & vmask]:
                            out[key | shifted] = count
                else:
                    for key, count in entries:
                        values = spread[(key >> f_shift) & vmask]
                        if values:
                            head = (key & below) | \
                                ((key >> shift) << raise_by)
                            for shifted in values:
                                out[head | shifted] = count
            elif tag == _R_DOUBLE:
                # Two binary facts join the new variable to two keyed
                # bag fields (interior grid vertices): one pre-joined
                # probe on the packed pair of field values.
                _, spread, s1, s2, below, shift, raise_by, top = op
                if top:
                    for key, count in entries:
                        for shifted in spread[
                                (((key >> s1) & vmask) << kb)
                                | ((key >> s2) & vmask)]:
                            out[key | shifted] = count
                else:
                    for key, count in entries:
                        values = spread[
                            (((key >> s1) & vmask) << kb)
                            | ((key >> s2) & vmask)]
                        if values:
                            head = (key & below) | \
                                ((key >> shift) << raise_by)
                            for shifted in values:
                                out[head | shifted] = count
            elif tag == _R_FREE_F:
                # Unconstrained introduce fused with its forget:
                # extension values are pre-spliced, the head is spliced
                # once per child entry, stores accumulate.
                _, values, below, shift, raise_by, top, \
                    g_below, g_shift, g_above = op
                store_at = position + 1
                out_get = out.get
                for key, count in entries:
                    if not top:
                        key = (key & below) | ((key >> shift) << raise_by)
                    head = (key & g_below) | ((key >> g_above) << g_shift)
                    for shifted in values:
                        grown = head | shifted
                        accumulated = out_get(grown)
                        out[grown] = count if accumulated is None \
                            else accumulated + count
            elif tag == _R_SINGLE_F:
                _, spread, f_shift, below, shift, raise_by, top, \
                    g_below, g_shift, g_above = op
                store_at = position + 1
                out_get = out.get
                for key, count in entries:
                    values = spread[(key >> f_shift) & vmask]
                    if not values:
                        continue
                    if not top:
                        key = (key & below) | ((key >> shift) << raise_by)
                    head = (key & g_below) | ((key >> g_above) << g_shift)
                    for shifted in values:
                        grown = head | shifted
                        accumulated = out_get(grown)
                        out[grown] = count if accumulated is None \
                            else accumulated + count
            elif tag == _R_DOUBLE_F:
                _, spread, s1, s2, below, shift, raise_by, top, \
                    g_below, g_shift, g_above = op
                store_at = position + 1
                out_get = out.get
                for key, count in entries:
                    values = spread[
                        (((key >> s1) & vmask) << kb)
                        | ((key >> s2) & vmask)]
                    if not values:
                        continue
                    if not top:
                        key = (key & below) | ((key >> shift) << raise_by)
                    head = (key & g_below) | ((key >> g_above) << g_shift)
                    for shifted in values:
                        grown = head | shifted
                        accumulated = out_get(grown)
                        out[grown] = count if accumulated is None \
                            else accumulated + count
            elif tag == _R_GENERIC:
                # Generic: several pair filters and/or higher-arity
                # membership checks.  Allowed-mask -> pre-shifted
                # values memo: the distinct allowed masks of a node
                # are few, so the bit scan runs once per mask — and the
                # memo lives inside the cached resolved program, so it
                # amortizes across counts too.
                _, candidates, getters, general, below, shift, \
                    raise_by, top, spread = op
                for key, count in entries:
                    allowed = candidates
                    for lookup, other_shift in getters:
                        allowed &= lookup((key >> other_shift) & vmask, 0)
                        if not allowed:
                            break
                    if not allowed:
                        continue
                    values = spread.get(allowed)
                    if values is None:
                        values = tuple(v << shift
                                       for v in bit_indices(allowed))
                        spread[allowed] = values
                    head = key if top \
                        else (key & below) | ((key >> shift) << raise_by)
                    if general:
                        for shifted in values:
                            grown = head | shifted
                            for packed, term_positions in general:
                                image = 0
                                for t, bag_pos in enumerate(term_positions):
                                    image |= ((grown >> (bag_pos * kb))
                                              & vmask) << (t * kb)
                                if image not in packed:
                                    break
                            else:
                                # (key, value) -> grown is injective:
                                # plain set, no accumulation.
                                out[grown] = count
                    else:
                        for shifted in values:
                            out[head | shifted] = count
        if len(out) > peak:
            peak = len(out)
        if budget is not None:
            # Charge the fan-out too: a FREE introduce writes
            # |child|·|candidates| entries off a single charged input
            # stride, so the output side is accounted per node.
            budget.charge(len(out))
        tables[store_at] = out
    if peak > _DP_PACKED["dp_peak_entries"]:
        _DP_PACKED["dp_peak_entries"] = peak
    return tables[-1].get(0, 0) * free_factor


def _count_plan_dp_sets(plan, index) -> int:
    """The original tuple-keyed, set-domain DP kernel.

    Reached when the target domain exceeds the bitset cap; also the
    set-domain ablation reference the bench suite times the packed
    kernel against.  Bit-identical to :func:`count_plan_dp` by the
    property corpus in ``tests/test_bitset.py``.
    """
    from repro.hom.engine import _plan_preamble_sets

    decided, domains, free_factor = _plan_preamble_sets(plan, index, False)
    if decided is not None:
        return decided
    budget = active_budget()

    dp = plan.dp_plan()
    nodes = dp.nice.nodes
    all_checks = dp.checks
    tuples = index.tuples
    tables: List[Optional[Dict[tuple, int]]] = [None] * len(nodes)
    for position, node in enumerate(nodes):
        kind = node.kind
        if kind == LEAF:
            tables[position] = {(): 1}
            continue
        if kind == JOIN:
            left_at, right_at = node.children
            left, right = tables[left_at], tables[right_at]
            tables[left_at] = tables[right_at] = None
            if len(left) > len(right):
                left, right = right, left
            joined: Dict[tuple, int] = {}
            left_items = left.items() if budget is None \
                else _budgeted(left.items(), budget)
            for key, count in left_items:
                other = right.get(key)
                if other is not None:
                    joined[key] = count * other
            tables[position] = joined
            continue
        child_at = node.children[0]
        child = tables[child_at]
        tables[child_at] = None
        entries = child.items() if budget is None \
            else _budgeted(child.items(), budget)
        var_pos = node.var_pos
        out: Dict[tuple, int] = {}
        if kind == FORGET:
            for key, count in entries:
                shrunk = key[:var_pos] + key[var_pos + 1:]
                accumulated = out.get(shrunk)
                out[shrunk] = count if accumulated is None \
                    else accumulated + count
        else:  # INTRODUCE
            values = domains[node.var]
            checks = all_checks[position]
            for key, count in entries:
                head, tail = key[:var_pos], key[var_pos:]
                for value in values:
                    grown = head + (value,) + tail
                    for relation, term_positions in checks:
                        image = tuple(grown[i] for i in term_positions)
                        if image not in tuples.get(relation, _EMPTY):
                            break
                    else:
                        # (key, value) -> grown is injective: plain set.
                        out[grown] = count
        if budget is not None:
            budget.charge(len(out))
        tables[position] = out
    total = tables[-1].get((), 0)
    return total * free_factor


def count_homomorphisms_dp(source: Structure, target: Structure) -> int:
    """``|hom(source, target)|`` via tree-decomposition DP.

    Convenience entry point (fresh compilation each call, no
    factorization into components) — the property-test counterpart of
    :func:`repro.hom.search.count_homomorphisms_direct`.  Hot paths go
    through :class:`~repro.hom.engine.HomEngine` instead, which picks
    DP or backtracking per source by estimated cost.
    """
    from repro.hom.engine import TargetIndex, source_plan

    return count_plan_dp(source_plan(source), TargetIndex(target))
