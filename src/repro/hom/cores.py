"""Cores of relational structures.

The *core* of a structure is its smallest retract: an induced
substructure ``C`` with a homomorphism ``G → C`` and no homomorphism
into anything smaller inside it.  Cores are the canonical
representatives of set-semantics equivalence classes of boolean CQs
(``q ≡set q'`` iff their frozen bodies have isomorphic cores), which
makes them a natural companion to the containment machinery of
:mod:`repro.hom.containment`.

Algorithm: repeatedly look for a *proper retraction* — an endomorphism
whose image misses at least one element — and restrict to the image;
stop when every endomorphism is surjective.  Exponential in the worst
case (deciding core-ness is co-NP-hard), fine on query-sized inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.hom.search import iter_homomorphisms
from repro.queries.cq import ConjunctiveQuery, cq_from_structure
from repro.structures.structure import Structure


def _proper_retraction_image(structure: Structure) -> Optional[Structure]:
    """The induced image of some non-surjective endomorphism, if any."""
    domain = structure.domain()
    for endomorphism in iter_homomorphisms(structure, structure):
        image = set(endomorphism.values())
        if len(image) < len(domain):
            return structure.restrict_domain(image)
    return None


def core(structure: Structure) -> Structure:
    """The core of a structure (unique up to isomorphism).

    >>> from repro.structures.generators import cycle_structure, path_structure
    >>> len(core(path_structure(['R', 'R'])).domain())   # path is rigid
    3
    >>> from repro.structures.structure import Structure
    >>> with_loop = Structure([('R', ('a', 'a')), ('R', ('a', 'b'))])
    >>> len(core(with_loop).domain())                    # collapses to loop
    1
    """
    current = structure
    while True:
        smaller = _proper_retraction_image(current)
        if smaller is None:
            return current
        current = smaller


def is_core(structure: Structure) -> bool:
    """True when every endomorphism is surjective."""
    return _proper_retraction_image(structure) is None


def core_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The minimized (set-semantics-equivalent) boolean CQ.

    Note: minimization is a *set-semantics* notion.  Under bag
    semantics a query and its core generally answer differently —
    which is precisely why the paper's Section 4 works with the full
    frozen bodies, not cores.
    """
    return cq_from_structure(core(query.frozen_body()))
