"""Backtracking homomorphism search.

A homomorphism ``h : dom(A) -> dom(B)`` (paper Section 2.1) maps every
fact ``R(t̄) ∈ A`` to a fact ``R(h(t̄)) ∈ B``.  This module provides
existence tests and full enumeration via backtracking with:

* **static variable ordering** by decreasing constraint degree,
* **preparation-time candidate ordering** (each candidate set is sorted
  once, so enumeration is deterministic with no per-node sorting),
* **unary/positional pre-filtering** of candidate sets (a constant that
  occurs in position ``i`` of some ``R``-fact of ``A`` can only map to
  constants occurring in position ``i`` of ``R``-facts of ``B``),
* **incremental consistency** checks over the facts whose terms are
  fully assigned.

Isolated elements of ``A`` (domain elements in no fact) are
unconstrained and contribute a factor ``|dom(B)|`` each — enumeration
materializes them, the counting fast path in :mod:`repro.hom.count`
multiplies instead.

0-ary facts of ``A`` are handled up front: they must literally be
present in ``B``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.structures.structure import Structure

Constant = Hashable
Assignment = Dict[Constant, Constant]


def _prepare(source: Structure, target: Structure, ordered_values: bool = False):
    """Shared setup for existence/enumeration.

    Returns ``None`` when a 0-ary fact of ``source`` is absent from
    ``target`` (no homomorphism), else a tuple
    ``(ordered_variables, candidates, facts_by_variable)``.  With
    ``ordered_values`` each candidate set is an already-sorted tuple:
    enumeration order is fixed here, once, instead of re-sorting at
    every backtracking node (counting callers skip the sort).
    """
    for fact in source.facts():
        if not fact.terms and not target.has_fact(fact.relation):
            return None

    positions: Dict[Tuple[str, int], Set[Constant]] = {}
    for fact in target.facts():
        for index, term in enumerate(fact.terms):
            positions.setdefault((fact.relation, index), set()).add(term)

    target_domain = set(target.domain())
    candidates: Dict[Constant, Set[Constant]] = {}
    degree: Dict[Constant, int] = {}
    facts_by_variable: Dict[Constant, List] = {}
    for constant in source.domain():
        candidates[constant] = set(target_domain)
        degree[constant] = 0
        facts_by_variable[constant] = []

    for fact in source.facts():
        for index, term in enumerate(fact.terms):
            allowed = positions.get((fact.relation, index))
            if allowed is None:
                return None
            candidates[term] &= allowed
            degree[term] += 1
        for term in set(fact.terms):
            facts_by_variable[term].append(fact)

    if any(not candidates[c] for c in source.active_domain()):
        return None

    ordered = sorted(
        source.domain(),
        key=lambda c: (-degree[c], len(candidates[c]), repr(c)),
    )
    if ordered_values:
        candidates = {
            c: tuple(sorted(values, key=repr)) for c, values in candidates.items()
        }
    return ordered, candidates, facts_by_variable


def _consistent(
    variable: Constant,
    assignment: Assignment,
    facts_by_variable: Dict[Constant, List],
    target: Structure,
) -> bool:
    for fact in facts_by_variable[variable]:
        if all(t in assignment for t in fact.terms):
            image = tuple(assignment[t] for t in fact.terms)
            if image not in target.tuples(fact.relation):
                return False
    return True


def iter_homomorphisms(source: Structure, target: Structure) -> Iterator[Assignment]:
    """Yield every homomorphism ``source -> target`` as a dict.

    The empty structure has exactly one homomorphism anywhere (the
    empty map), matching ``|hom(∅, D)| = 1``.
    """
    prepared = _prepare(source, target, ordered_values=True)
    if prepared is None:
        return
    ordered, candidates, facts_by_variable = prepared

    assignment: Assignment = {}

    def backtrack(index: int) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        variable = ordered[index]
        for value in candidates[variable]:
            assignment[variable] = value
            if _consistent(variable, assignment, facts_by_variable, target):
                yield from backtrack(index + 1)
            del assignment[variable]

    yield from backtrack(0)


def exists_homomorphism(source: Structure, target: Structure) -> bool:
    """Existence test (stops at the first homomorphism)."""
    for _ in iter_homomorphisms(source, target):
        return True
    return False


def find_homomorphism(source: Structure, target: Structure) -> Optional[Assignment]:
    """The first homomorphism found, or ``None``."""
    for hom in iter_homomorphisms(source, target):
        return hom
    return None


def count_homomorphisms_direct(source: Structure, target: Structure) -> int:
    """Count by raw backtracking, *without* component factorization.

    Isolated elements of ``source`` are counted by multiplication
    rather than enumeration, but connected parts are enumerated
    exhaustively.  Prefer :func:`repro.hom.count.count_homs`, which
    factors into components first; this function is its ground truth in
    tests (and the thing the E5 ablation benchmarks against).
    """
    prepared = _prepare(source, target)
    if prepared is None:
        return 0
    ordered, candidates, facts_by_variable = prepared

    isolated = source.isolated_elements()
    constrained = [v for v in ordered if v not in isolated]
    assignment: Assignment = {}

    def backtrack(index: int) -> int:
        if index == len(constrained):
            return 1
        variable = constrained[index]
        total = 0
        for value in candidates[variable]:
            assignment[variable] = value
            if _consistent(variable, assignment, facts_by_variable, target):
                total += backtrack(index + 1)
            del assignment[variable]
        return total

    base = backtrack(0)
    return base * (len(target.domain()) ** len(isolated))
