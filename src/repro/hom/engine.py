"""The compiled homomorphism-counting engine.

Every answer the library gives — determinacy verdicts, witness
verification, good-basis search — bottoms out in ``|hom(A, B)|``
counts (Lemma 4).  The naive counter in :mod:`repro.hom.search`
rebuilds all target-side indexes on every call and re-enumerates
isomorphic source components from scratch.  This module separates the
work into three layers that are each computed **once** and reused:

Both compilations start from the **interned form**
(:mod:`repro.structures.interned`): constants are replaced by dense
small integers, so every candidate-set probe, projection-map lookup
and DP table key below manipulates ints instead of arbitrary tuples
and strings.

``TargetIndex``
    Per-target compilation: positional candidate sets
    (``(relation, position) -> allowed int values``), per-relation
    int-row sets, and lazily-built binary projection maps
    (``(relation, i, j) -> {value_at_i: values_at_j}``) used for
    forward checking.  Built once per target structure, cached in the
    engine with LRU eviction.

``SourcePlan``
    Per-source compilation: static variable order (decreasing
    constraint degree) over interned variables, per-variable
    incident-fact lists, nullary-fact preconditions, the
    ``tail_simple`` flag that lets the counter close the last level
    combinatorially, and a lazily-built tree-decomposition DP schedule
    (:meth:`SourcePlan.dp_plan`).  Cached per source structure.

``HomEngine``
    The façade.  Counts are memoized in an LRU-bounded cache keyed by
    the **canonical byte key** of each connected component
    (:func:`repro.structures.canonical.canonical_key`): the key is a
    pure function of the isomorphism class, so the rampant isomorphic
    components of synthetic workloads share a single count — with no
    bucket scan and no pairwise isomorphism test on the probe path.

Two counting backends sit behind one dispatch (:func:`count_plan`):

* **backtracking** — iterative search with forward checking over
  *bitset domains*: every candidate set is one Python int (bit ``v``
  ⇔ value ``v`` allowed), so assigning a variable prunes its
  unassigned neighbours with a single ``&`` per projection, a wiped
  domain is ``== 0``, and the undo trail is a flat list of
  ``(variable, old_mask)`` int pairs.  Candidates are visited by
  scanning set bits from the least-significant end — deterministic
  ascending value order.  Targets beyond ``_BITSET_MAX_DOMAIN`` fall
  back to the original set-domain kernel (``_count_sets``), which is
  kept verbatim as fallback and ablation reference.  Worst-case
  exponential in the number of source variables.
* **tree-decomposition DP** (:mod:`repro.hom.dpcount`) — bag-table
  dynamic programming over a nice decomposition of the source's
  Gaifman graph, ``O(poly · |B|^{w+1})`` for treewidth ``w``.

:func:`choose_strategy` picks per ``(source, target)`` pair by
comparing a branching-degree-product estimate of the backtracking
search tree against ``Σ |B|^{bag}`` over the DP schedule; the engine's
``strategy`` knob (``"auto"``/``"backtrack"``/``"dp"``) overrides the
choice globally, and per-strategy counters plus a width histogram are
surfaced through :meth:`HomEngine.stats`.
:func:`repro.hom.search.count_homomorphisms_direct` remains the
independent recursive ground truth that both backends are
property-tested against.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, List, Tuple

from repro.errors import ReproError
from repro.faults.budget import (
    BudgetExceeded,
    active_budget,
    budget_stats,
    injected_exceeded,
    may_degrade,
)
from repro.faults.inject import should_inject
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.structures.canonical import canonical_key, canonical_stats
from repro.structures.interned import intern_stats, interned, mask_of
from repro.structures.structure import Structure

Constant = Hashable

_EMPTY: FrozenSet = frozenset()

STRATEGIES = ("auto", "backtrack", "dp")

# Domains are packed into Python-int bitsets (bit v ⇔ value v allowed)
# as long as the target domain fits this many bits.  Beyond the cap a
# mostly-empty multi-kiloword mask costs more to AND than a sparse set
# costs to intersect, so the counter falls back to the set-domain
# kernels (and counts the event in ``bitset_stats``).
_BITSET_MAX_DOMAIN = 1 << 16

# Module-wide observability of the bit-parallel kernels (same scoping
# as the intern/canonical counters: the representation layer is shared
# by every engine in the process).  ``propagations`` counts
# domain-narrowing events of the bitset forward checker;
# ``fallbacks`` counts counts that ran on the set-domain kernels
# because the target domain exceeded the cap.
_BITSET_COUNTERS = {"propagations": 0, "fallbacks": 0}


def bitset_stats() -> Dict[str, int]:
    """Counters of the bit-parallel kernels (for ``stats()``).

    Includes the packed-DP table peak from :mod:`repro.hom.dpcount`
    so one block answers "are the bitset kernels on, and how big do
    the packed tables get".
    """
    from repro.hom.dpcount import dp_packed_stats

    report = dict(_BITSET_COUNTERS)
    report.update(dp_packed_stats())
    return report

# Plan-selection tuning, fitted against the bit-parallel kernels
# (EXPERIMENTS.md E19).  Sources with fewer variables than this never
# pay for a decomposition (backtracking wins on trivia outright); a
# backtracking estimate below the floor is already so cheap that the
# DP's fixed per-table overhead cannot pay off; and one packed DP
# table entry costs roughly this many backtracking node visits, so
# the DP must win by that factor.  The packed kernels moved all three:
# a 4-variable path into a dense target already runs ~3× faster on
# the packed DP than on bitset backtracking, and the measured cost of
# one packed table entry is near one search node (the bias keeps a 2×
# safety margin toward backtracking, whose memory is O(n)).
_DP_MIN_VARS = 4
_BACKTRACK_CHEAP_FLOOR = 256.0
_DP_COST_BIAS = 2.0


class TargetIndex:
    """One-time compilation of a counting target, onto interned ints.

    Precomputes everything :func:`repro.hom.search._prepare` used to
    rebuild on every call: the domain size, the positional candidate
    sets and the per-relation tuple sets — all over the dense integer
    domain of the target's interned form, so the counter's inner loops
    hash ints only.  Binary projection maps (the adjacency lists
    driving forward checking) are built lazily per ``(relation, i, j)``
    and kept for the lifetime of the index.
    """

    __slots__ = ("structure", "inter", "domain_size", "key_bits",
                 "positions", "tuples", "arities", "_pair_maps",
                 "_position_masks", "_pair_bits", "_packed_rows",
                 "_loop_masks")

    def __init__(self, structure: Structure):
        self.structure = structure
        inter = interned(structure)
        self.inter = inter
        self.domain_size = inter.n
        self.key_bits = inter.key_bits
        positions: Dict[Tuple[str, int], FrozenSet[int]] = {}
        tuples: Dict[str, FrozenSet[Tuple[int, ...]]] = {}
        for relation, rows in inter.relations.items():
            tuples[relation] = frozenset(rows)
            arity = inter.arities[relation]
            if arity:
                columns: List[set] = [set() for _ in range(arity)]
                for row in rows:
                    for i, value in enumerate(row):
                        columns[i].add(value)
                for i, column in enumerate(columns):
                    positions[(relation, i)] = frozenset(column)
        self.positions = positions
        self.tuples = tuples
        self.arities = inter.arities
        self._pair_maps: Dict[Tuple[str, int, int],
                              Dict[int, FrozenSet[int]]] = {}
        # Bitmask twins of the candidate machinery, built lazily and
        # cached alongside the set forms: non-hot callers (and the
        # set-domain fallback kernels) keep the sets, while the
        # bit-parallel kernels probe these.
        self._position_masks: Dict[Tuple[str, int], int] = {}
        self._pair_bits: Dict[Tuple[str, int, int], Dict[int, int]] = {}
        self._packed_rows: Dict[str, FrozenSet[int]] = {}
        self._loop_masks: Dict[str, int] = {}

    def pair_map(self, relation: str, i: int, j: int
                 ) -> Dict[int, FrozenSet[int]]:
        """Projection ``{v: {w | some R-tuple has v at i and w at j}}``."""
        key = (relation, i, j)
        cached = self._pair_maps.get(key)
        if cached is None:
            collected: Dict[Constant, set] = {}
            for tup in self.tuples.get(relation, ()):
                collected.setdefault(tup[i], set()).add(tup[j])
            cached = {value: frozenset(seen)
                      for value, seen in collected.items()}
            self._pair_maps[key] = cached
        return cached

    def position_mask(self, relation: str, i: int):
        """The positional candidate set as a bitset (``None`` when the
        ``(relation, position)`` pair has no target facts at all)."""
        key = (relation, i)
        cached = self._position_masks.get(key)
        if cached is None:
            allowed = self.positions.get(key)
            if allowed is None:
                return None
            cached = mask_of(allowed)
            self._position_masks[key] = cached
        return cached

    def pair_bits(self, relation: str, i: int, j: int) -> Dict[int, int]:
        """:meth:`pair_map` with bitset values: ``{v: mask of w}``."""
        key = (relation, i, j)
        cached = self._pair_bits.get(key)
        if cached is None:
            cached = {value: mask_of(seen)
                      for value, seen in self.pair_map(relation, i, j).items()}
            self._pair_bits[key] = cached
        return cached

    def loop_mask(self, relation: str) -> int:
        """Bitset of values ``v`` with a binary fact ``R(v, v)``."""
        cached = self._loop_masks.get(relation)
        if cached is None:
            cached = 0
            for row in self.tuples.get(relation, ()):
                if len(row) == 2 and row[0] == row[1]:
                    cached |= 1 << row[0]
            self._loop_masks[relation] = cached
        return cached

    def packed_rows(self, relation: str) -> FrozenSet[int]:
        """The relation's rows packed into single ints
        (``Σ row[t] << (t·key_bits)`` — the DP's key layout)."""
        cached = self._packed_rows.get(relation)
        if cached is None:
            kb = self.key_bits
            packed = set()
            for row in self.tuples.get(relation, ()):
                key = 0
                for t, value in enumerate(row):
                    key |= value << (t * kb)
                packed.add(key)
            cached = frozenset(packed)
            self._packed_rows[relation] = cached
        return cached

    def __repr__(self) -> str:
        return (f"TargetIndex(|dom|={self.domain_size}, "
                f"relations={sorted(self.tuples)})")


class SourcePlan:
    """One-time compilation of a counting source, onto interned ints.

    Only depends on the source structure, so it is shared across all
    targets (module-level LRU via :func:`source_plan`).  Variables are
    the dense integers of the source's interned form; the counter maps
    them onto the target's interned values.
    """

    __slots__ = ("source", "inter", "order", "incident", "facts",
                 "fact_arities", "nullary_relations", "isolated_count",
                 "tail_simple", "level_props", "level_checks",
                 "_dp_plan", "_base_domains", "_dp_resolved",
                 "_strategy_cache")

    def __init__(self, source: Structure):
        self.source = source
        inter = interned(source)
        self.inter = inter
        self._dp_plan = None
        # Per-target base bitmask domains (see base_domain_masks):
        # target structure -> (feasible, tuple of masks per variable).
        self._base_domains: "OrderedDict[Structure, Tuple[bool, Tuple[int, ...]]]" \
            = OrderedDict()
        # Per-target resolved DP introduce programs (see
        # repro.hom.dpcount._resolved_intro): target structure ->
        # per-node op tuples with projections, spreads and key
        # geometry pre-bound — pure functions of (plan, target), so
        # repeat DP counts skip all per-node setup.
        self._dp_resolved: "OrderedDict[Structure, tuple]" = OrderedDict()
        facts: List[Tuple[str, Tuple[int, ...]]] = []
        nullary: List[str] = []
        for relation, row in inter.iter_facts():
            if row:
                facts.append((relation, row))
            else:
                nullary.append(relation)
        self.facts = tuple(facts)
        self.fact_arities = tuple({rel: len(row)
                                   for rel, row in facts}.items())
        self.nullary_relations = tuple(sorted(set(nullary)))

        degree: Dict[int, int] = {}
        for _, row in facts:
            for term in row:
                degree[term] = degree.get(term, 0) + 1
        self.order: Tuple[int, ...] = tuple(sorted(
            degree, key=lambda v: (-degree[v], v)
        ))
        self.isolated_count = inter.n - inter.n_active

        incident: Dict[int, List] = {v: [] for v in self.order}
        for relation, row in facts:
            at: Dict[int, List[int]] = {}
            for position, term in enumerate(row):
                at.setdefault(term, []).append(position)
            entry_needs_check = len(row) != 2 or row[0] == row[1]
            for term, positions in at.items():
                incident[term].append(
                    (relation, row, tuple(positions), entry_needs_check)
                )
        self.incident = {v: tuple(entries) for v, entries in incident.items()}

        # Level-compiled forward-checking schedules for the bitset
        # kernel.  The search assigns variables strictly in the static
        # order, so "currently assigned" when ``order[L]`` is placed is
        # exactly the prefix ``order[:L+1]`` — which neighbour
        # positions still need pruning and which facts become fully
        # decided is known at compile time, not per search node.
        # ``level_props[L]`` holds ``(relation, i, j, other_var)``
        # propagation edges fired when ``order[L]`` is assigned;
        # ``level_checks[L]`` holds ``(relation, terms)`` facts that
        # close at level ``L`` and are not already enforced by
        # propagation (arity ≠ 2 or self-loops).
        order_pos = {v: L for L, v in enumerate(self.order)}
        props: List[List[Tuple[str, int, int, int]]] = \
            [[] for _ in self.order]
        checks: List[List[Tuple[str, Tuple[int, ...]]]] = \
            [[] for _ in self.order]
        for relation, row in facts:
            if len(row) != 2 or row[0] == row[1]:
                checks[max(order_pos[t] for t in row)].append((relation, row))
            for level in sorted({order_pos[t] for t in row}):
                variable = self.order[level]
                for i, t in enumerate(row):
                    if t != variable:
                        continue
                    for j, other in enumerate(row):
                        if order_pos[other] > level:
                            props[level].append((relation, i, j, other))
        self.level_props = tuple(tuple(entries) for entries in props)
        self.level_checks = tuple(tuple(entries) for entries in checks)

        # Per-target strategy choices (see choose_strategy): the
        # cost-model verdict is a pure function of (plan, target
        # structure), so repeat counts skip both estimate loops.
        self._strategy_cache: "OrderedDict[Structure, str]" = OrderedDict()

        # The last variable in the static order can be closed
        # combinatorially when every fact incident to it is either
        # unary (already folded into the positional candidate sets) or
        # binary with distinct endpoints (already folded into the
        # forward-checking prune of the earlier endpoint).
        if self.order:
            last = self.order[-1]
            self.tail_simple = all(
                len(terms) == 1
                or (len(terms) == 2 and terms[0] != terms[1])
                for _, terms, _, _ in self.incident[last]
            )
        else:
            self.tail_simple = False

    def dp_plan(self):
        """The (lazily built, cached) tree-decomposition DP schedule.

        Shared across every target the source is counted into — the
        decomposition depends on the source alone.
        """
        plan = self._dp_plan
        if plan is None:
            from repro.hom.dpcount import build_dp_plan

            plan = build_dp_plan(self.source, self)
            self._dp_plan = plan
        return plan

    # Per-plan, a handful of distinct targets covers every realistic
    # request stream (the engine's own target LRU is the big cache);
    # the bound only stops a pathological many-target caller from
    # pinning arbitrarily many structures through their plans.
    _BASE_DOMAIN_CACHE = 8

    def base_domain_masks(self, index: "TargetIndex"):
        """Base bitmask domains of this plan against one target.

        ``(feasible, masks)`` where ``masks[var]`` is the intersection
        of the target's positional candidate bitsets over every
        occurrence of ``var`` in this plan's facts — the domains every
        count against that target starts from.  A pure function of
        ``(self, index.structure)``, so it is cached per target
        structure (LRU-bounded on the plan, evicted with the plan
        itself): repeat counts against the same target skip the whole
        intersection loop.  ``feasible`` is ``False`` when some domain
        came up empty (the count is 0 regardless of ``first_only``).
        Callers must not mutate the returned tuple's masks in place —
        they are ints, so ordinary rebinding is always safe.
        """
        key = index.structure
        cache = self._base_domains
        entry = cache.get(key)
        if entry is not None:
            cache.move_to_end(key)
            return entry
        position_mask = index.position_mask
        masks: List = [None] * self.inter.n_active
        feasible = True
        for relation, terms in self.facts:
            for i, term in enumerate(terms):
                allowed = position_mask(relation, i)
                if allowed is None:
                    feasible = False
                    break
                current = masks[term]
                masks[term] = allowed if current is None \
                    else current & allowed
            if not feasible:
                break
        if feasible:
            feasible = all(masks)
        entry = (feasible, tuple(masks) if feasible else ())
        cache[key] = entry
        if len(cache) > self._BASE_DOMAIN_CACHE:
            cache.popitem(last=False)
        return entry


@lru_cache(maxsize=4096)
def source_plan(source: Structure) -> SourcePlan:
    """The (cached) compiled plan of a source structure."""
    return SourcePlan(source)


@lru_cache(maxsize=1024)
def target_index(target: Structure) -> TargetIndex:
    """The (cached) compiled index of a target structure.

    Like :func:`~repro.structures.interned.interned`,
    :func:`~repro.structures.canonical.canonical_key` and
    :func:`source_plan`, the compiled target is a pure function of the
    (immutable, hashable) structure, so one build is shared
    process-wide: engines and sessions that come and go — batch
    workers, per-request service sessions, ``clear()``-ed benches —
    reuse the index *and* its lazily grown projection maps and bitmask
    twins instead of recompiling the same target.  Engines keep their
    own LRU view on top (``max_targets``) for per-engine accounting.
    """
    return TargetIndex(target)


def count_with_index(source: Structure, index: TargetIndex,
                     first_only: bool = False,
                     strategy: str = "auto") -> int:
    """``|hom(source, index.structure)|`` via the compiled plan.

    ``first_only`` turns the counter into an existence test: it returns
    1 as soon as any homomorphism is found (0 otherwise).  ``strategy``
    picks the backend (see :func:`count_plan`).
    """
    return count_plan(source_plan(source), index, first_only, strategy)


def _estimate_backtrack_cost(plan: SourcePlan, index: TargetIndex) -> float:
    """Branching-degree-product estimate of the backtracking tree size.

    Level by level down the static variable order: the first value of a
    variable's branching bound is its smallest positional candidate
    set; once an already-assigned neighbour constrains it through a
    shared fact, the bound drops to that relation's average fan-out
    (``|tuples| / |distinct values at the assigned position|``).  The
    per-level products are summed, approximating the number of search
    nodes.  Fan-outs below 1 are kept (floored at 0.5): they model the
    early die-off forward checking actually delivers on sparse targets.
    """
    domain_size = float(index.domain_size)
    positions = index.positions
    tuples = index.tuples
    total = 1.0
    level = 1.0
    assigned: set = set()
    for variable in plan.order:
        branching = domain_size
        for relation, terms, var_positions, _ in plan.incident[variable]:
            fact_count = len(tuples.get(relation, ()))
            for i in var_positions:
                allowed = positions.get((relation, i))
                if allowed is not None:
                    branching = min(branching, float(len(allowed)))
            for j, term in enumerate(terms):
                if term != variable and term in assigned:
                    anchors = len(positions.get((relation, j), ())) or 1
                    branching = min(branching, fact_count / anchors)
        level *= max(branching, 0.5)
        total += level
        if total > 1e18:  # saturate: past any DP cost by then anyway
            return 1e18
        assigned.add(variable)
    return total


def _estimate_dp_cost(dp_plan, index: TargetIndex) -> float:
    """``Σ nodes·|B|^bagsize`` — the DP's table-work bound."""
    domain_size = max(1.0, float(index.domain_size))
    cost = 0.0
    for size, count in dp_plan.size_histogram.items():
        cost += count * domain_size ** size
        if cost > 1e18:
            return 1e18
    return cost


def choose_strategy(plan: SourcePlan, index: TargetIndex,
                    first_only: bool = False) -> str:
    """Cost-based backend choice for one ``(source, target)`` pair.

    Existence probes always backtrack (they short-circuit on the first
    homomorphism; the DP cannot).  Tiny sources and cheap searches
    backtrack without ever paying for a decomposition; otherwise the
    decomposition is built once (cached on the plan) and the two cost
    estimates are compared.  The verdict is a pure function of
    ``(plan, index.structure)``, so it is cached on the plan (same
    LRU bound as the base-domain masks): hot request streams pay the
    estimate loops once per (source, target) pair.
    """
    if first_only or len(plan.order) < _DP_MIN_VARS:
        return "backtrack"
    cache = plan._strategy_cache
    key = index.structure
    cached = cache.get(key)
    if cached is not None:
        cache.move_to_end(key)
        return cached
    choice = "backtrack"
    backtrack_cost = _estimate_backtrack_cost(plan, index)
    if backtrack_cost > _BACKTRACK_CHEAP_FLOOR:
        try:
            dp = plan.dp_plan()
        except ReproError:  # decomposition failed: never block counting
            dp = None
        if dp is not None and \
                _estimate_dp_cost(dp, index) * _DP_COST_BIAS < backtrack_cost:
            choice = "dp"
    cache[key] = choice
    if len(cache) > SourcePlan._BASE_DOMAIN_CACHE:
        cache.popitem(last=False)
    return choice


def count_plan(plan: SourcePlan, index: TargetIndex,
               first_only: bool = False, strategy: str = "auto") -> int:
    """Count through a compiled plan with explicit backend control.

    ``strategy`` is ``"auto"`` (cost-based choice), ``"backtrack"`` or
    ``"dp"``.  A forced ``"dp"`` existence probe computes the full
    count and thresholds it — still exact, just not short-circuiting.
    """
    if strategy == "auto":
        strategy = choose_strategy(plan, index, first_only)
    elif strategy not in STRATEGIES:
        raise ReproError(
            f"unknown counting strategy {strategy!r}; "
            f"expected one of {STRATEGIES}")
    if strategy == "dp":
        from repro.hom.dpcount import count_plan_dp

        result = count_plan_dp(plan, index)
        return (1 if result else 0) if first_only else result
    return _count(plan, index, first_only)


def _preamble_guards(plan: SourcePlan, index: TargetIndex, first_only: bool):
    """The search-free decisions shared by both preambles.

    ``(decided, free_factor)``: ``decided`` is the final count when the
    question settles before any candidate machinery (0-ary fact
    missing, arity mismatch, variable-free source), otherwise ``None``
    with the isolated-element multiplier the caller applies.
    """
    tuples = index.tuples
    # 0-ary facts of the source must literally be present in the target;
    # this runs before any candidate machinery is built.
    for relation in plan.nullary_relations:
        present = tuples.get(relation)
        if not present or () not in present:
            return 0, 1

    # Arity guard: a fact R(t̄) can only map onto same-arity R-facts.
    # The positional filters below assume matching arities (a wider
    # target relation would otherwise satisfy every position), so a
    # mismatch is decided here: no homomorphism maps the fact.
    target_arities = index.arities
    for relation, arity in plan.fact_arities:
        if target_arities.get(relation) != arity:
            return 0, 1

    if plan.isolated_count and not first_only:
        if index.domain_size == 0:
            return 0, 1
        free_factor = index.domain_size ** plan.isolated_count
    elif plan.isolated_count and index.domain_size == 0:
        return 0, 1
    else:
        free_factor = 1
    if not plan.order:
        return (1 if first_only else free_factor), free_factor
    return None, free_factor


def _plan_preamble(plan: SourcePlan, index: TargetIndex, first_only: bool):
    """The shared pre-search phase of both bit-parallel backends.

    Returns ``(decided, domains, free_factor)``: when ``decided`` is
    not ``None`` the count is fully determined before any search;
    otherwise ``domains`` is a mutable list mapping each source
    variable (a dense int) to its candidate *bitset*.  The base masks
    come from the per-target cache on the plan
    (:meth:`SourcePlan.base_domain_masks`), so only the first count
    against a target pays the intersection loop.
    """
    decided, free_factor = _preamble_guards(plan, index, first_only)
    if decided is not None or not plan.order:
        return decided, None, free_factor
    feasible, base = plan.base_domain_masks(index)
    if not feasible:
        return 0, None, free_factor
    return None, list(base), free_factor


def _plan_preamble_sets(plan: SourcePlan, index: TargetIndex,
                        first_only: bool):
    """:func:`_plan_preamble` over set domains — the fallback kernels'
    preamble (domains as ``{variable: set of values}``), also the
    ablation reference the bench suite times the bitsets against."""
    decided, free_factor = _preamble_guards(plan, index, first_only)
    if decided is not None or not plan.order:
        return decided, None, free_factor

    # Positional candidate sets (intersection over every occurrence).
    positions = index.positions
    domains: Dict[Constant, set] = {}
    for relation, terms in plan.facts:
        for i, term in enumerate(terms):
            allowed = positions.get((relation, i))
            if allowed is None:
                return 0, None, free_factor
            current = domains.get(term)
            if current is None:
                domains[term] = set(allowed)
            else:
                current &= allowed
    for variable in plan.order:
        if not domains[variable]:
            return 0, None, free_factor
    return None, domains, free_factor


def _count(plan: SourcePlan, index: TargetIndex, first_only: bool) -> int:
    """Backtracking count: bitset kernel, set kernel past the cap."""
    if should_inject("engine.step"):
        raise injected_exceeded()
    if index.domain_size > _BITSET_MAX_DOMAIN:
        _BITSET_COUNTERS["fallbacks"] += 1
        return _count_sets(plan, index, first_only)
    return _count_bitset(plan, index, first_only)


def _count_bitset(plan: SourcePlan, index: TargetIndex,
                  first_only: bool) -> int:
    """Forward-checking backtracking over bitset domains.

    Semantically identical to :func:`_count_sets` — the candidate sets
    are the same sets, just packed — with three representation wins:
    propagation is ``old & allowed`` on two ints, the undo trail is a
    flat list of ``(variable, old_mask)`` int pairs (no set copies),
    and level iteration scans set bits from the least-significant end,
    so candidates are visited in deterministic ascending value order.
    """
    decided, domains, free_factor = _plan_preamble(plan, index, first_only)
    if decided is not None:
        return decided
    order = plan.order
    n = len(order)

    if n == 1 and plan.tail_simple:
        size = domains[order[0]].bit_count()
        return (1 if size else 0) if first_only else size * free_factor

    # Resolve the plan's level-compiled schedules against this target
    # once per count: propagation edges become (projection-dict, var)
    # pairs, closing checks become (row-set, terms) pairs.  The search
    # loop below then runs with zero per-node membership probes — no
    # "which neighbours are unassigned" recomputation, no assignment
    # dict; the assignment is a flat list indexed by variable (stale
    # slots above the current level are never read, because a level's
    # checks only touch variables at or below it).
    pair_bits = index.pair_bits
    tuples = index.tuples
    prop_ops = [tuple((pair_bits(rel, i, j), other)
                      for rel, i, j, other in entries)
                for entries in plan.level_props]
    check_ops = [tuple((tuples.get(rel, _EMPTY), terms)
                       for rel, terms in entries)
                 for entries in plan.level_checks]
    assign: List[int] = [0] * plan.inter.n_active
    propagations = 0
    budget = active_budget()
    nodes = 0

    total = 0
    last = n - 1
    tail_simple = plan.tail_simple
    remaining: List[int] = [0] * n
    trails: List = [None] * n
    remaining[0] = domains[order[0]]
    level = 0
    while level >= 0:
        variable = order[level]
        checks = check_ops[level]
        props = prop_ops[level]
        mask = remaining[level]
        trail = None
        while mask:
            # Budget check once per 1024 search nodes: one increment
            # and one int AND per node, the Budget consult amortized
            # past the bench gate's ≤2% envelope (DESIGN.md §14).
            nodes += 1
            if not nodes & 1023 and budget is not None:
                budget.charge(1024)
            low = mask & -mask
            mask ^= low
            value = low.bit_length() - 1
            assign[variable] = value
            if checks:
                ok = True
                for rows, terms in checks:
                    if tuple(assign[t] for t in terms) not in rows:
                        ok = False
                        break
                if not ok:
                    continue
            trail = []
            for projection, other in props:
                allowed = projection.get(value, 0)
                old = domains[other]
                new = old & allowed
                if new == old:
                    continue
                trail.append((other, old))
                domains[other] = new
                if not new:
                    propagations += len(trail)
                    for o, m in reversed(trail):
                        domains[o] = m
                    trail = None
                    break
            if trail is not None:
                propagations += len(trail)
                break
        remaining[level] = mask
        if trail is None:
            # level exhausted: backtrack
            level -= 1
            if level >= 0:
                for other, old in reversed(trails[level]):
                    domains[other] = old
            continue
        if level == last:
            total += 1
            for other, old in reversed(trail):
                domains[other] = old
            if first_only:
                _BITSET_COUNTERS["propagations"] += propagations
                return 1
            continue
        trails[level] = trail
        if level + 1 == last and tail_simple:
            # Every remaining constraint on the last variable has been
            # folded into its pruned candidate set: close combinatorially.
            total += domains[order[last]].bit_count()
            for other, old in reversed(trail):
                domains[other] = old
            if first_only and total:
                _BITSET_COUNTERS["propagations"] += propagations
                return 1
            continue
        level += 1
        remaining[level] = domains[order[level]]
    _BITSET_COUNTERS["propagations"] += propagations
    return (1 if total else 0) if first_only else total * free_factor


def _count_sets(plan: SourcePlan, index: TargetIndex,
                first_only: bool) -> int:
    decided, domains, free_factor = _plan_preamble_sets(plan, index,
                                                       first_only)
    if decided is not None:
        return decided
    tuples = index.tuples
    order = plan.order
    n = len(order)

    if n == 1 and plan.tail_simple:
        size = len(domains[order[0]])
        return (1 if size else 0) if first_only else size * free_factor

    incident = plan.incident
    pair_map = index.pair_map
    assignment: Dict[Constant, Constant] = {}

    def try_assign(variable: Constant, value: Constant):
        """Assign and forward-check; returns the undo trail, or None on
        failure (with all effects rolled back)."""
        assignment[variable] = value
        trail: List[Tuple[Constant, set]] = []
        for relation, terms, var_positions, needs_check in incident[variable]:
            unassigned = [j for j, t in enumerate(terms) if t not in assignment]
            if not unassigned:
                if needs_check:
                    image = tuple(assignment[t] for t in terms)
                    if image not in tuples.get(relation, _EMPTY):
                        break
                continue
            failed = False
            for i in var_positions:
                for j in unassigned:
                    other = terms[j]
                    allowed = pair_map(relation, i, j).get(value)
                    old = domains[other]
                    if allowed is None:
                        new: set = set()
                    else:
                        new = old & allowed
                        if len(new) == len(old):
                            continue
                    trail.append((other, old))
                    domains[other] = new
                    if not new:
                        failed = True
                        break
                if failed:
                    break
            if failed:
                break
        else:
            return trail
        for other, old in reversed(trail):
            domains[other] = old
        del assignment[variable]
        return None

    total = 0
    last = n - 1
    tail_simple = plan.tail_simple
    budget = active_budget()
    nodes = 0
    iters: List = [None] * n
    trails: List = [None] * n
    iters[0] = iter(domains[order[0]])
    level = 0
    while level >= 0:
        variable = order[level]
        trail = None
        for value in iters[level]:
            # Same 1024-node budget stride as the bitset kernel.
            nodes += 1
            if not nodes & 1023 and budget is not None:
                budget.charge(1024)
            trail = try_assign(variable, value)
            if trail is not None:
                break
        if trail is None:
            # level exhausted: backtrack
            level -= 1
            if level >= 0:
                for other, old in reversed(trails[level]):
                    domains[other] = old
                del assignment[order[level]]
            continue
        if level == last:
            total += 1
            for other, old in reversed(trail):
                domains[other] = old
            del assignment[variable]
            if first_only:
                return 1
            continue
        trails[level] = trail
        if level + 1 == last and tail_simple:
            # Every remaining constraint on the last variable has been
            # folded into its pruned candidate set: close combinatorially.
            tail = len(domains[order[last]])
            total += tail
            for other, old in reversed(trail):
                domains[other] = old
            del assignment[variable]
            if first_only and total:
                return 1
            continue
        level += 1
        iters[level] = iter(domains[order[level]])
    return (1 if total else 0) if first_only else total * free_factor


class HomEngine:
    """Shared counting engine: compiled targets + canonical memoization.

    One engine object replaces the ad-hoc ``CountCache`` dictionaries
    that used to be threaded through the decision procedure, the
    witness verifier, the good-basis search and the refuter.  The memo
    is keyed by the canonical byte key of each source component
    (:func:`repro.structures.canonical.canonical_key`), so isomorphic
    components (rampant in workloads assembled from a small component
    pool) share one count — one dict probe, no bucket scan, no
    pairwise isomorphism test.  Both caches are LRU-bounded.
    """

    __slots__ = ("_counts", "_targets", "_exists",
                 "max_counts", "max_targets",
                 "store", "strategy", "width_histogram", "metrics",
                 "_m_hits", "_m_misses", "_m_exists_hits",
                 "_m_exists_misses", "_m_store_hits", "_m_store_misses",
                 "_m_dp", "_m_backtrack")

    def __init__(self, max_counts: int = 16384, max_targets: int = 512,
                 store=None, strategy: str = "auto"):
        if strategy not in STRATEGIES:
            raise ReproError(
                f"unknown counting strategy {strategy!r}; "
                f"expected one of {STRATEGIES}")
        self.max_counts = max_counts
        self.max_targets = max_targets
        # Backend override: "auto" picks per (source, target) pair by
        # estimated cost; "backtrack"/"dp" force one backend for every
        # count this engine performs (ablations, debugging).
        self.strategy = strategy
        # Decomposition widths of DP-executed counts — the observable
        # that tells an operator *why* the DP path was worth taking.
        # Kept as an exact dict (widths are tiny ints; log2 buckets
        # would destroy the signal) and exported into the registry as
        # per-width counters.
        self.width_histogram: Dict[int, int] = {}
        self._counts: "OrderedDict[Tuple[bytes, Structure], int]" = OrderedDict()
        self._targets: "OrderedDict[Structure, TargetIndex]" = OrderedDict()
        self._exists: "OrderedDict[Tuple[Structure, Structure], bool]" = OrderedDict()
        # Every counter lives in the metrics registry under the
        # namespaced schema (repro.obs); the hot loops increment the
        # Counter objects directly (one attribute store, same cost as
        # the plain ints they replaced) and the legacy attribute names
        # (``engine.hits`` …) survive as read-only properties.
        metrics = MetricsRegistry()
        self.metrics = metrics
        self._m_hits = metrics.counter("engine.memo.hits")
        self._m_misses = metrics.counter("engine.memo.misses")
        self._m_exists_hits = metrics.counter("engine.exists.hits")
        self._m_exists_misses = metrics.counter("engine.exists.misses")
        self._m_store_hits = metrics.counter("engine.store.hits")
        self._m_store_misses = metrics.counter("engine.store.misses")
        self._m_dp = metrics.counter("engine.count.dp")
        self._m_backtrack = metrics.counter("engine.count.backtrack")
        metrics.gauge("engine.memo.entries", lambda: len(self._counts))
        metrics.gauge("engine.exists.entries", lambda: len(self._exists))
        metrics.gauge("engine.targets.compiled", lambda: len(self._targets))
        metrics.register_collector(self._collect_counters, monotonic=True)
        metrics.register_collector(self._collect_gauges, monotonic=False)
        # Optional persistent second-level cache (duck-typed: anything
        # with ``lookup(component, leaf) -> Optional[int]`` and
        # ``record(component, leaf, count)``; implementations may also
        # provide ``lookup_exists``/``record_exists`` for the
        # Chandra–Merlin probes and ``flush``; see
        # :class:`repro.batch.cache.SQLiteHomStore`).  Consulted on
        # in-memory misses and fed every freshly computed count, so a
        # warm store survives the process and is shared across worker
        # processes of a batch run.
        self.store = store

    # Legacy attribute surface over the registry-homed counters.
    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def exists_hits(self) -> int:
        return self._m_exists_hits.value

    @property
    def exists_misses(self) -> int:
        return self._m_exists_misses.value

    @property
    def store_hits(self) -> int:
        return self._m_store_hits.value

    @property
    def store_misses(self) -> int:
        return self._m_store_misses.value

    @property
    def dp_counts(self) -> int:
        return self._m_dp.value

    @property
    def backtrack_counts(self) -> int:
        return self._m_backtrack.value

    def _collect_counters(self) -> Dict[str, int]:
        """Monotonic registry entries sourced from shared module-wide
        layers (intern / canonical / bitset) plus the exact per-width
        DP counters — all under the namespaced schema."""
        interning = intern_stats()
        canonical = canonical_stats()
        bitset = bitset_stats()
        budget = budget_stats()
        report = {
            "intern.structures": interning["structures"],
            "intern.hits": interning["hits"],
            "canonical.keys": canonical["keys"],
            "canonical.hits": canonical["hits"],
            "bitset.propagations": bitset["propagations"],
            "bitset.fallbacks": bitset["fallbacks"],
            "dp.packed.fallbacks": bitset["dp_fallbacks"],
            "budget.exceeded_deadline": budget["exceeded_deadline"],
            "budget.exceeded_steps": budget["exceeded_steps"],
            "budget.injected": budget["injected"],
            "budget.degraded": budget["degraded"],
        }
        for width, count in self.width_histogram.items():
            report[f"engine.dp.width.{width}"] = count
        return report

    def _collect_gauges(self) -> Dict[str, int]:
        bitset = bitset_stats()
        return {
            "intern.cached": intern_stats()["cached"],
            "canonical.cached": canonical_stats()["cached"],
            "dp.packed.peak_entries": bitset["dp_peak_entries"],
        }

    # ------------------------------------------------------------------
    # Compiled targets
    # ------------------------------------------------------------------
    def target_index(self, target: Structure) -> TargetIndex:
        index = self._targets.get(target)
        if index is None:
            with span("plan"):
                index = target_index(target)
            self._targets[target] = index
            if len(self._targets) > self.max_targets:
                self._targets.popitem(last=False)
        else:
            self._targets.move_to_end(target)
        return index

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count_connected_leaf(self, component: Structure,
                             leaf: Structure) -> int:
        """``|hom(component, leaf)|`` for a single component, memoized
        up to isomorphism of the component (canonical byte key)."""
        if not component.facts():
            # Isolated vertices only: pure domain-size power.
            return len(leaf.domain()) ** len(component.domain())
        key = (canonical_key(component), leaf)
        cached = self._counts.get(key)
        if cached is not None:
            self._counts.move_to_end(key)
            self._m_hits.value += 1
            return cached
        self._m_misses.value += 1
        result = None
        if self.store is not None:
            with span("store"):
                result = self.store.lookup(component, leaf)
            if result is None:
                self._m_store_misses.value += 1
            else:
                self._m_store_hits.value += 1
        if result is None:
            result = self._dispatch(source_plan(component),
                                    self.target_index(leaf), False)
            if self.store is not None:
                with span("store"):
                    self.store.record(component, leaf, result)
        self._counts[key] = result
        if len(self._counts) > self.max_counts:
            self._counts.popitem(last=False)
        return result

    def _dispatch(self, plan: SourcePlan, index: TargetIndex,
                  first_only: bool) -> int:
        """Run one count through the selected backend, keeping the
        per-strategy counters and the width histogram current."""
        strategy = self.strategy
        if strategy == "auto":
            strategy = choose_strategy(plan, index, first_only)
        if strategy == "dp":
            from repro.hom.dpcount import count_plan_dp

            self._m_dp.value += 1
            width = plan.dp_plan().width
            self.width_histogram[width] = \
                self.width_histogram.get(width, 0) + 1
            try:
                with span("count.dp"):
                    result = count_plan_dp(plan, index)
            except BudgetExceeded as exc:
                # Graceful degradation (DESIGN.md §14, auto mode only):
                # the DP's table-size bet went wrong, but the request's
                # wall clock may still have room for the O(n)-memory
                # backtracking backend — retry once under the deadline
                # alone.  A forced-dp engine re-raises: the caller asked
                # for that backend specifically.
                if self.strategy != "auto" or not may_degrade(exc):
                    raise
                self._m_backtrack.value += 1
                with span("count.backtrack"):
                    result = _count(plan, index, first_only)
            return (1 if result else 0) if first_only else result
        self._m_backtrack.value += 1
        with span("count.backtrack"):
            return _count(plan, index, first_only)

    def seed_count(self, component: Structure, leaf: Structure,
                   value: int) -> None:
        """Pre-populate the memo with an externally known count.

        Used by persistent stores to warm-start a fresh engine (e.g. a
        new batch worker) without re-running the counter.  The entry is
        keyed through :func:`canonical_key` exactly like computed
        counts.
        """
        self.seed_count_key(canonical_key(component), leaf, value)

    def seed_count_key(self, key: bytes, leaf: Structure,
                       value: int) -> None:
        """Pre-populate the memo by canonical key directly.

        The persistent store records canonical keys, not source
        structures, so a warm start never needs to decode (or even
        possess) a source — the key *is* the identity.
        """
        entry = (key, leaf)
        self._counts[entry] = value
        if len(self._counts) > self.max_counts:
            self._counts.popitem(last=False)

    def count(self, source: Structure, target) -> int:
        """``|hom(source, target)|`` — component factorization plus the
        Lemma 4 expression calculus, all memoized through this engine.
        ``target`` may be a Structure or a lazy StructureExpression."""
        from repro.hom.count import count_homs

        return count_homs(source, target, self)

    def exists(self, source: Structure, target: Structure) -> bool:
        """Memoized homomorphism-existence test (Chandra–Merlin probe)."""
        key = (source, target)
        cached = self._exists.get(key)
        if cached is not None:
            self._exists.move_to_end(key)
            self._m_exists_hits.value += 1
            return cached
        self._m_exists_misses.value += 1
        result = None
        if self.store is not None:
            lookup = getattr(self.store, "lookup_exists", None)
            if lookup is not None:
                with span("store"):
                    result = lookup(source, target)
                if result is None:
                    self._m_store_misses.value += 1
                else:
                    self._m_store_hits.value += 1
        if result is None:
            result = self._dispatch(source_plan(source),
                                    self.target_index(target), True) > 0
            if self.store is not None:
                record = getattr(self.store, "record_exists", None)
                if record is not None:
                    record(source, target, result)
        self._exists[key] = result
        if len(self._exists) > self.max_counts:
            self._exists.popitem(last=False)
        return result

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def attach_store(self, store) -> None:
        """Attach a persistent second-level count store (see ``store``)."""
        self.store = store

    def detach_store(self) -> None:
        self.store = None

    def flush_store(self) -> None:
        """Flush buffered writes of the attached store, if any."""
        if self.store is not None:
            flush = getattr(self.store, "flush", None)
            if flush is not None:
                flush()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self, flat: bool = False) -> Dict[str, object]:
        """Engine statistics.

        ``flat=True`` returns the namespaced registry snapshot (the
        documented metric schema, :mod:`repro.obs`); the default is
        the legacy nested shape every pre-observability caller reads.
        Both are sourced from the same registry-homed counters.
        """
        if flat:
            return self.metrics.snapshot()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "exists_hits": self.exists_hits,
            "exists_misses": self.exists_misses,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "cached_counts": len(self._counts),
            "compiled_targets": len(self._targets),
            # The intern and canonical-label layers are module-wide
            # (shared by every engine in the process); their counters
            # are surfaced here because the engine is what drives them.
            "interning": intern_stats(),
            "canonical": canonical_stats(),
            "bitset": bitset_stats(),
            "budget": budget_stats(),
            "dp_counts": self.dp_counts,
            "backtrack_counts": self.backtrack_counts,
            "width_histogram": dict(self.width_histogram),
        }

    def clear(self) -> None:
        """Drop all in-memory caches (the attached store is untouched)."""
        self._counts.clear()
        self._targets.clear()
        self._exists.clear()
        for counter in (self._m_hits, self._m_misses, self._m_exists_hits,
                        self._m_exists_misses, self._m_store_hits,
                        self._m_store_misses, self._m_dp,
                        self._m_backtrack):
            counter.reset()
        self.width_histogram.clear()

    def __repr__(self) -> str:
        return (f"HomEngine(counts={len(self._counts)}, "
                f"targets={len(self._targets)}, hits={self.hits}, "
                f"misses={self.misses})")


def default_engine() -> HomEngine:
    """The process-wide shared engine (LRU-bounded, safe to keep).

    Compatibility shim: the engine is owned by the module-level default
    :class:`~repro.session.SolverSession`, so legacy callers and
    session-aware callers that pass no session always share one memo.
    Prefer an explicit session (``session=`` on every decision entry
    point) for anything beyond a one-shot script.
    """
    from repro.session import default_session

    return default_session().engine
