"""Closed-loop load generation against a running daemon.

The concurrency story of this repo is only credible if it is measured
the way a service is measured: N concurrent clients, each issuing its
next request the moment the previous one answers (closed loop), with
throughput and tail latency (p50/p99) reported — not a single-threaded
stopwatch.  This module is that harness; it backs ``repro serve load``,
``scripts/load_gen.py`` and the ``service_concurrency`` bench workload.

Three transports, matching the deployment modes under comparison:

* ``per-request`` — dial a fresh TCP connection per request: the
  legacy :class:`~repro.service.client.DaemonClient` behaviour whose
  overhead this PR's async front end removes.  Works against both the
  threaded and the async daemon.
* ``persistent`` — one TCP connection per client, reused for every
  request (the async daemon's intended mode; also works against the
  threaded daemon, whose handler loops over lines).
* ``ws`` — one WebSocket connection per client against the async
  daemon's HTTP facade, exercising the browser-client path.

Clients run on plain threads (the generator must not share an event
loop with the daemon under test), synchronize on a barrier so the
measurement window excludes connection setup, and each records
per-request wall-clock latencies.  ``overloaded`` rejections count as
errors, not successes — a run that measures rejection throughput is
reported as such, never silently blended in.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError

TRANSPORTS = ("per-request", "persistent", "ws")


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass
class LoadReport:
    """One load run's outcome: counts, wall clock, latency quantiles."""

    clients: int
    transport: str
    requests: int
    errors: int
    elapsed_s: float
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 0.50)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 0.99)

    def summary(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "transport": self.transport,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


def _is_error(response_line: str) -> bool:
    try:
        record = json.loads(response_line)
    except json.JSONDecodeError:
        return True
    return not (isinstance(record, dict) and record.get("ok"))


class _PerRequestTransport:
    """Dial, send one line, read one line, close — per request."""

    def __init__(self, host: str, port: int, timeout: float):
        self._address = (host, port)
        self._timeout = timeout

    def exchange(self, line: str) -> str:
        with socket.create_connection(self._address,
                                      timeout=self._timeout) as sock:
            sock.sendall(line.encode("utf-8") + b"\n")
            with sock.makefile("r", encoding="utf-8") as reader:
                response = reader.readline()
        if not response:
            raise ConnectionError("daemon closed the connection")
        return response.rstrip("\n")

    def close(self) -> None:
        pass


class _PersistentTransport:
    """One connection for the client's whole run (request order)."""

    def __init__(self, host: str, port: int, timeout: float):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def exchange(self, line: str) -> str:
        self._sock.sendall(line.encode("utf-8") + b"\n")
        response = self._reader.readline()
        if not response:
            raise ConnectionError("daemon closed the connection")
        return response.rstrip("\n")

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass


class _WebSocketTransport:
    """A minimal RFC 6455 client over the async daemon's HTTP port."""

    def __init__(self, host: str, port: int, timeout: float):
        import base64
        import os

        self._sock = socket.create_connection((host, port), timeout=timeout)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        self._sock.sendall((
            f"GET /ws HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n\r\n"
        ).encode("ascii"))
        self._buffer = b""
        status = self._read_until(b"\r\n\r\n")
        status_line = status.split(b"\r\n", 1)[0]
        if b" 101 " not in status_line:
            raise ConnectionError("websocket upgrade refused: "
                                  + status_line.decode("latin-1"))

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("daemon closed during handshake")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head + marker

    def _read_exactly(self, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("daemon closed mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def _read_frame(self) -> str:
        import struct

        while True:
            header = self._read_exactly(2)
            opcode = header[0] & 0x0F
            length = header[1] & 0x7F
            if length == 126:
                length = struct.unpack(">H", self._read_exactly(2))[0]
            elif length == 127:
                length = struct.unpack(">Q", self._read_exactly(8))[0]
            payload = self._read_exactly(length)
            if opcode == 0x1:  # text
                return payload.decode("utf-8")
            if opcode == 0x8:  # close
                raise ConnectionError("daemon sent close frame")
            # ping/pong/other control frames: skip

    def exchange(self, line: str) -> str:
        from repro.service.httpgate import encode_frame

        self._sock.sendall(encode_frame(line.encode("utf-8"), mask=True))
        return self._read_frame()

    def close(self) -> None:
        try:
            from repro.service.httpgate import encode_frame

            self._sock.sendall(encode_frame(b"", opcode=0x8, mask=True))
            self._sock.close()
        except OSError:
            pass


_TRANSPORT_FACTORIES: Dict[str, Callable] = {
    "per-request": _PerRequestTransport,
    "persistent": _PersistentTransport,
    "ws": _WebSocketTransport,
}


def run_load(host: str, port: int, lines: Sequence[str],
             clients: int = 16,
             requests_per_client: int = 25,
             transport: str = "persistent",
             timeout: float = 30.0) -> LoadReport:
    """Drive ``clients`` closed-loop workers; return the merged report.

    Each client cycles through ``lines`` (offset by its index so
    concurrent clients do not lock-step on the same task) for
    ``requests_per_client`` requests.  Transports connect *before*
    the barrier, so the measured window is pure request/response
    traffic.  A client that dies mid-run marks its remaining requests
    as errors rather than crashing the harness.
    """
    if transport not in _TRANSPORT_FACTORIES:
        raise ReproError(
            f"unknown load transport {transport!r}; "
            f"expected one of {list(TRANSPORTS)}")
    if not lines:
        raise ReproError("load generation needs at least one task line")
    factory = _TRANSPORT_FACTORIES[transport]
    barrier = threading.Barrier(clients + 1)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    failures: List[str] = []
    failures_lock = threading.Lock()

    def _client(index: int) -> None:
        try:
            channel = factory(host, port, timeout)
        except OSError as exc:
            with failures_lock:
                failures.append(f"client {index} connect: {exc}")
            errors[index] += requests_per_client
            barrier.wait()
            return
        try:
            barrier.wait()
            for step in range(requests_per_client):
                line = lines[(index + step) % len(lines)]
                start = time.perf_counter()
                try:
                    response = channel.exchange(line)
                except (OSError, ConnectionError) as exc:
                    with failures_lock:
                        failures.append(f"client {index}: {exc}")
                    errors[index] += requests_per_client - step
                    return
                latencies[index].append(
                    (time.perf_counter() - start) * 1000.0)
                if _is_error(response):
                    errors[index] += 1
        finally:
            channel.close()

    workers = [threading.Thread(target=_client, args=(i,), daemon=True)
               for i in range(clients)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    all_latencies = [ms for per_client in latencies for ms in per_client]
    report = LoadReport(
        clients=clients, transport=transport,
        requests=len(all_latencies),
        errors=sum(errors), elapsed_s=elapsed,
        latencies_ms=all_latencies)
    if failures and not all_latencies:
        raise ReproError("load run produced no successful requests: "
                         + "; ".join(failures[:3]))
    return report


def default_task_lines(count: int = 8, seed: int = 2024) -> List[str]:
    """A small cycle of scenario tasks sized so dispatch overhead, not
    evaluation, dominates — the regime the concurrency bench and the
    CI smoke lane both want."""
    from repro.batch.scenarios import generate_scenario
    from repro.batch.tasks import canonical_json

    return [canonical_json(record)
            for record in generate_scenario("mixed", count, seed=seed)]
