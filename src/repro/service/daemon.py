"""The long-running solver daemon behind ``repro serve``.

Architecture (DESIGN.md §10): one resident
:class:`~repro.session.SolverSession` shared by every request, a
bounded thread pool dispatching requests onto it, and two front-ends
speaking the same line protocol —

* **stdio** (:func:`serve_stdio`): read JSONL requests from a stream,
  write one JSONL response per request *in request order*, exit at EOF
  or on a ``shutdown`` op.  Piping a scenario file through this mode is
  byte-identical to ``repro batch run --workers 1`` on the same file.
* **socket** (:func:`serve_socket`): a threading TCP server; each
  connection speaks the same protocol, responses in per-connection
  request order.

Request lines are exactly the batch task codec
(:mod:`repro.batch.tasks`): ``decide-cq`` (optionally with witness
construction), ``decide-path``, ``containment``, ``certify-ucq`` and
``hom-count``.  Additionally a *control* line — a JSON object carrying
an ``"op"`` key — asks the daemon about itself::

    {"op": "ping"}      -> {"ok": true, "op": "ping"}
    {"op": "stats"}     -> {"ok": true, "op": "stats", "stats": {...}}
    {"op": "shutdown"}  -> {"ok": true, "op": "shutdown"} and the
                           daemon drains in-flight work and exits.

Concurrency model: the worker pool bounds how many requests are
admitted at once (backpressure for many connections), while actual
engine access is serialized under one lock — the memo's ``OrderedDict``
bookkeeping is not thread-safe, and the counting workload is
GIL-bound pure Python, so a lock costs no real parallelism and buys
exact, shared memoization.  Every request is error-isolated: library
errors become ``{"ok": false}`` records (same as batch mode) and
unexpected exceptions are caught per request so one poisoned task can
never take the daemon down.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, IO, Iterable, Optional

from repro.batch.runner import evaluate_envelope
from repro.batch.tasks import canonical_json
from repro.errors import ReproError
from repro.obs.logs import StructuredLogger, new_request_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import collect_phases
from repro.session import SolverSession

DEFAULT_WORKERS = 4
CONTROL_OPS = ("ping", "stats", "metrics", "drain", "shutdown")


class ServiceStats:
    """Request accounting for one service lifetime, registry-homed.

    Every number lives in a :class:`~repro.obs.metrics.MetricsRegistry`
    under the ``service.*`` names of the documented schema
    (:mod:`repro.obs`); :meth:`snapshot` renders the legacy nested
    shape from those same metrics.  Request latency goes into a
    log2-bucketed histogram in microseconds — the buckets the
    ``metrics`` control op and the Prometheus exposition serve.
    """

    __slots__ = ("metrics", "_requests", "_errors", "_control",
                 "_latency", "_budget_exceeded", "_kinds")

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = self.metrics.counter("service.requests")
        self._errors = self.metrics.counter("service.errors")
        self._control = self.metrics.counter("service.control_requests")
        self._latency = self.metrics.histogram("service.request.latency_us")
        self._budget_exceeded = self.metrics.counter(
            "service.request.budget_exceeded")
        self._kinds: Dict[str, object] = {}

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def control_requests(self) -> int:
        return self._control.value

    def record_control(self) -> None:
        self._control.value += 1

    def record(self, kind: Optional[str], ok: bool, elapsed: float,
               budget_exceeded: bool = False) -> None:
        self._requests.value += 1
        if not ok:
            self._errors.value += 1
        if budget_exceeded:
            self._budget_exceeded.value += 1
        self._latency.observe(elapsed * 1e6)
        label = kind or "invalid"
        counter = self._kinds.get(label)
        if counter is None:
            counter = self.metrics.counter(f"service.requests.kind.{label}")
            self._kinds[label] = counter
        counter.value += 1

    def snapshot(self) -> Dict[str, object]:
        count = self._latency.count
        mean = (self._latency.sum / 1e6 / count) if count else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "control_requests": self.control_requests,
            "budget_exceeded": self._budget_exceeded.value,
            "mean_latency_ms": round(mean * 1000.0, 3),
            "kinds": {label: counter.value
                      for label, counter in sorted(self._kinds.items())},
        }


class SolverService:
    """A resident solver: one warm session, a bounded dispatch pool.

    ``session`` is adopted when given (the caller closes it), otherwise
    the service builds one from ``store_path``/``strategy`` and owns
    it.  ``workers`` bounds concurrently admitted requests.
    ``request_deadline_ms`` becomes the session's default wall-clock
    budget: any request without its own ``deadline_ms`` is cut off
    after that long and answered with a structured ``budget-exceeded``
    error record instead of stalling the pool.
    """

    def __init__(self, session: Optional[SolverSession] = None,
                 workers: int = DEFAULT_WORKERS,
                 store_path: Optional[str] = None,
                 shards: Optional[int] = None,
                 memory_tier: Optional[int] = None,
                 preload_pack: Optional[str] = None,
                 strategy: str = "auto",
                 preload: int = 0,
                 logger: Optional[StructuredLogger] = None,
                 request_deadline_ms: Optional[float] = None):
        if session is not None:
            # Same rule as SolverSession's engine adoption: silently
            # dropping the caller's store/strategy configuration would
            # masquerade as a warm persistent deployment while serving
            # cold — refuse the contradiction instead.
            if store_path is not None or strategy != "auto" \
                    or request_deadline_ms is not None \
                    or shards is not None or memory_tier is not None \
                    or preload_pack is not None:
                raise ReproError(
                    "cannot adopt an existing session and also configure "
                    "store_path/shards/memory_tier/preload_pack/strategy/"
                    "request_deadline_ms; configure the session itself")
            self.session = session
            self._owns_session = False
        else:
            self.session = SolverSession(
                store_path=store_path, shards=shards,
                memory_tier=memory_tier, preload_pack=preload_pack,
                strategy=strategy, preload=preload,
                default_deadline_ms=request_deadline_ms)
            self._owns_session = True
        self.workers = max(1, workers)
        # The service registry tops the metrics tree: service counters
        # and the request-latency histogram here, the session's (and
        # through it the engine's) registry attached below, so one
        # snapshot — the `metrics` control op — walks every layer.
        self.metrics = MetricsRegistry()
        self.stats_counters = ServiceStats(self.metrics)
        self.metrics.gauge("service.workers", lambda: self.workers)
        self.metrics.gauge(
            "service.uptime_s",
            lambda: round(time.monotonic() - self.started_at, 3))
        self.metrics.attach(self.session.metrics)
        self.logger = logger
        self.started_at = time.monotonic()
        self._engine_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="repro-serve")
        self._closed = False

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def control_response(self, line: str) -> Optional[str]:
        """The response line if ``line`` is a control op, else ``None``.

        Control ops are cheap and answered inline (never queued behind
        counting work); ``shutdown`` flips the service into draining
        mode — callers stop reading after relaying the response.
        """
        stripped = line.strip()
        if not stripped.startswith("{") or '"op"' not in stripped:
            return None
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, dict) or "op" not in payload:
            return None
        op = payload["op"]
        with self._state_lock:
            self.stats_counters.record_control()
        if op == "ping":
            return canonical_json({"ok": True, "op": "ping"})
        if op == "stats":
            return canonical_json({"ok": True, "op": "stats",
                                   "stats": self.stats()})
        if op == "metrics":
            if payload.get("format") == "prometheus":
                with self._engine_lock:
                    text = self.metrics.exposition()
                return canonical_json({"ok": True, "op": "metrics",
                                       "format": "prometheus",
                                       "exposition": text})
            with self._engine_lock:
                snapshot = self.metrics.snapshot()
            return canonical_json({"ok": True, "op": "metrics",
                                   "metrics": snapshot})
        if op == "drain":
            # Same lifecycle as shutdown — stop admitting work, answer
            # everything in flight — but spelled as the operator
            # command, so clients can tell a planned drain from a kill.
            self._shutdown.set()
            return canonical_json({"ok": True, "op": "drain",
                                   "draining": True})
        if op == "shutdown":
            self._shutdown.set()
            return canonical_json({"ok": True, "op": "shutdown"})
        return canonical_json({
            "ok": False, "op": str(op),
            "error": f"unknown control op {op!r}; "
                     f"expected one of {list(CONTROL_OPS)}"})

    def evaluate(self, line: str) -> str:
        """One result line for one task line — locked, error-isolated.

        Every request gets a generated request id; when a structured
        logger is attached, the request's phase spans
        (``parse``/``plan``/``count``/``store``, collected from the
        instrumented layers below) land on one JSON log line on
        stderr — the protocol stream on stdout is untouched.
        """
        request_id = new_request_id()
        start = time.perf_counter()
        ok = True
        kind = None
        task_id = None
        budget_exceeded = False
        phases: Dict[str, float] = {}
        try:
            with self._engine_lock:
                if self.logger is not None:
                    with collect_phases() as phases:
                        envelope = evaluate_envelope(line, self.session)
                else:
                    envelope = evaluate_envelope(line, self.session)
            kind = envelope.get("kind")
            task_id = envelope.get("id")
            ok = bool(envelope.get("ok"))
            budget_exceeded = envelope.get("error_kind") == "budget-exceeded"
            result = canonical_json(envelope)
        except (KeyboardInterrupt, SystemExit):
            # Never swallowed into an error record: these are the
            # process being told to stop, not a request failing.
            raise
        except Exception as exc:  # noqa: BLE001 — the daemon must survive
            # evaluate_envelope already converts library errors;
            # anything arriving here is an unexpected bug in a single
            # request, which must not kill the other requests in
            # flight.  Session accounting still sees the request, so
            # the stats op's two counters stay in step on error
            # streams.  The request id ties the record to the log line.
            ok = False
            with self._engine_lock:
                self.session.record_task(ok=False)
            result = canonical_json({
                "id": None, "kind": None, "ok": False,
                "request_id": request_id,
                "error": f"InternalError: {type(exc).__name__}: {exc}",
            })
        elapsed = time.perf_counter() - start
        with self._state_lock:
            self.stats_counters.record(kind, ok, elapsed,
                                       budget_exceeded=budget_exceeded)
        if self.logger is not None:
            self.logger.request(request_id, kind=kind, ok=ok,
                                elapsed_s=elapsed, task_id=task_id,
                                phases=phases)
        return result

    def submit(self, line: str) -> "Future[str]":
        """Queue a task line on the bounded pool."""
        return self._pool.submit(self.evaluate, line)

    def handle_line(self, line: str) -> Optional[str]:
        """Synchronous convenience: control inline, tasks evaluated now.

        Returns ``None`` for blank lines.  The stream front-ends use
        the finer-grained :meth:`control_response`/:meth:`submit` pair
        instead, to keep control ops out of the counting queue.
        """
        if not line.strip():
            return None
        return self.control_response(line) or self.evaluate(line)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def shutting_down(self) -> bool:
        return self._shutdown.is_set()

    def request_shutdown(self) -> None:
        """Flip into draining mode (signal handlers call this)."""
        self._shutdown.set()

    def stats(self, flat: bool = False) -> Dict[str, object]:
        """Service counters + the resident session's aggregated stats.

        ``flat=True`` returns the namespaced registry snapshot across
        every layer (service → session → engine) — the same view the
        ``metrics`` control op serves; the default keeps the legacy
        nested ``{"service": ..., "session": ...}`` shape.

        The session block includes the intern/canonical-label counters
        (``session.engine.interning`` / ``session.engine.canonical``):
        on a healthy production stream the canonical ``hits`` grow
        much faster than ``keys`` — renamed
        request payloads collapsing onto already-labeled iso classes —
        which is exactly the effect residency is deployed for, observable
        live through ``{"op": "stats"}``.
        """
        if flat:
            with self._engine_lock:
                return self.metrics.snapshot()
        with self._state_lock:
            service = self.stats_counters.snapshot()
        service["uptime_s"] = round(time.monotonic() - self.started_at, 3)
        service["workers"] = self.workers
        # Engine lock: the session snapshot touches the memo and the
        # SQLite store handle, which are only safe while no worker
        # thread is mid-evaluation.
        with self._engine_lock:
            session = self.session.stats()
        return {"service": service, "session": session}

    def close(self) -> None:
        """Drain the pool, flush the session, close owned state."""
        if self._closed:
            return
        self._closed = True
        self._shutdown.set()
        self._pool.shutdown(wait=True)
        if self._owns_session:
            self.session.close()
        else:
            self.session.flush()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# stdio front-end
# ----------------------------------------------------------------------
def serve_stdio(service: SolverService,
                source: Optional[Iterable[str]] = None,
                sink: Optional[IO[str]] = None,
                max_pending: Optional[int] = None) -> int:
    """Answer a JSONL request stream, responses in request order.

    Reads ``source`` (default stdin) to EOF — or until a ``shutdown``
    op or :meth:`SolverService.request_shutdown` — writing one response
    line per request to ``sink`` (default stdout).  Task lines are
    dispatched through the bounded pool; a dedicated writer thread
    emits and flushes each response *as soon as it resolves*, oldest
    first, so an interactive client gets its answer immediately while
    response order always matches request order.

    ``max_pending`` bounds the reader→writer response queue (default
    ``4 × workers``, floor 2): when the consumer stops draining
    ``sink``, the queue fills and the *reader* stalls — backpressure
    propagates to the producer instead of buffering an unbounded
    stream's responses in memory.  Returns the number of response
    lines written.
    """
    import queue as queue_module

    source = sys.stdin if source is None else source
    sink = sys.stdout if sink is None else sink
    if max_pending is None:
        max_pending = max(2, service.workers * 4)
    if max_pending < 1:
        raise ReproError(
            f"serve_stdio max_pending must be >= 1, got {max_pending}")
    pending: "queue_module.Queue" = queue_module.Queue(maxsize=max_pending)
    done = object()
    written = 0

    def write_responses() -> None:
        nonlocal written
        while True:
            item = pending.get()
            if item is done:
                return
            response = item.result() if isinstance(item, Future) else item
            sink.write(response + "\n")
            sink.flush()
            written += 1

    writer = threading.Thread(target=write_responses,
                              name="repro-serve-writer", daemon=True)
    writer.start()
    try:
        for line in source:
            if not line.strip():
                continue
            control = service.control_response(line)
            if control is not None:
                # Queued behind the tasks before it: order preserved.
                pending.put(control)
                if service.shutting_down:
                    break
                continue
            if service.shutting_down:
                break
            pending.put(service.submit(line))
    except KeyboardInterrupt:
        # Graceful: answer everything already admitted, then stop.
        pass
    pending.put(done)
    writer.join()
    service.session.flush()
    return written


# ----------------------------------------------------------------------
# socket front-end
# ----------------------------------------------------------------------
class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover — exercised via TCP tests
        service: SolverService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            response = service.control_response(line)
            if response is None:
                response = service.submit(line).result()
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if service.shutting_down:
                # shutdown() must come from outside the serve_forever
                # thread; handler threads qualify (ThreadingMixIn).
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: SolverService):
        super().__init__(address, _RequestHandler)
        self.service = service


def serve_socket(service: SolverService, host: str = "127.0.0.1",
                 port: int = 0, ready: Optional[threading.Event] = None,
                 bound: Optional[list] = None) -> None:
    """Serve the line protocol over TCP until shut down.

    ``port=0`` binds an ephemeral port; the bound ``(host, port)`` is
    appended to ``bound`` (when given) and ``ready`` is set once the
    server accepts connections — the test harness and embedders use
    both to rendezvous without sleeping.  Blocks until a ``shutdown``
    op arrives or :meth:`SolverService.request_shutdown` plus a closing
    connection end the loop.
    """
    with _Server((host, port), service) as server:
        if bound is not None:
            bound.append(server.server_address)
        if ready is not None:
            ready.set()
        try:
            server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            # Graceful: stop accepting; in-flight handler threads are
            # daemons and the pool drains in service.close().
            pass
    service.session.flush()
