"""Per-connection tenancy for the async service front end.

The threaded daemon (DESIGN.md §10) serves every client from *one*
resident session behind one engine lock: correct, but a single hot
tenant convoys everyone else, and there is no way to give two clients
different strategies, budgets or memo bounds.  The async front end
(:mod:`repro.service.async_daemon`) instead gives each connection — or
each named tenant across connections — its own :class:`Tenant`:

* an isolated :class:`~repro.session.SolverSession` (own engine, own
  memo, own budget defaults), so one tenant's deadline trips, strategy
  override or memo churn never leak into another's;
* a **quota** (:class:`TenantQuota`): max in-flight requests admitted
  at once, per-request deadline default (PR 8 budgets), memo bounds,
  and a default priority for the dispatch queue;
* registry-homed accounting (``service.tenant.<name>.*`` counters)
  surfaced live through ``{"op": "stats"}`` / ``{"op": "metrics"}``.

Tenants may share one persistent store: :class:`LockedStore` wraps the
service-owned store object with a lock so independent tenant engines
can probe and record concurrently (the SQLite stores are only
thread-compatible under external serialization — the threaded daemon's
engine lock used to provide it; here the store wrapper does).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError
from repro.hom.engine import STRATEGIES
from repro.obs.metrics import MetricsRegistry
from repro.session import SolverSession

DEFAULT_MAX_INFLIGHT = 8


class LockedStore:
    """A thread-safe facade over one shared store object.

    Implements the engine's duck-typed store protocol (``lookup`` /
    ``record`` / ``lookup_exists`` / ``record_exists`` / ``flush`` /
    ``stats``) by delegating under one lock.  Every tenant session
    borrows this wrapper, so N tenant engines share one warm
    persistent cache without sharing an engine lock.
    """

    __slots__ = ("_store", "_lock")

    def __init__(self, store):
        self._store = store
        self._lock = threading.Lock()

    def lookup(self, component, leaf):
        with self._lock:
            return self._store.lookup(component, leaf)

    def record(self, component, leaf, count) -> None:
        with self._lock:
            self._store.record(component, leaf, count)

    def lookup_exists(self, source, target):
        with self._lock:
            return self._store.lookup_exists(source, target)

    def record_exists(self, source, target, exists) -> None:
        with self._lock:
            self._store.record_exists(source, target, exists)

    def preload(self, engine, limit: int = 2048) -> int:
        with self._lock:
            seeder = getattr(self._store, "preload", None)
            return seeder(engine, limit=limit) if seeder else 0

    def flush(self) -> None:
        with self._lock:
            self._store.flush()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            stats = getattr(self._store, "stats", None)
            return stats() if stats else {}

    def close(self) -> None:
        with self._lock:
            self._store.close()


@dataclass(frozen=True)
class TenantQuota:
    """Admission and budget bounds for one tenant.

    ``max_inflight`` bounds how many of the tenant's requests may be
    admitted (queued or executing) at once — the per-tenant slice of
    the service's backpressure.  ``deadline_ms`` is the PR 8 default
    wall-clock budget for every request that does not carry its own
    ``deadline_ms``.  ``max_counts``/``max_targets`` bound the
    tenant engine's memo (its memory budget).  ``priority`` is the
    default dispatch priority (lower runs earlier; see
    :mod:`repro.service.async_daemon`).
    """

    max_inflight: int = DEFAULT_MAX_INFLIGHT
    deadline_ms: Optional[float] = None
    max_counts: int = 16384
    max_targets: int = 512
    priority: int = 5
    strategy: str = "auto"

    def validate(self) -> None:
        if self.max_inflight < 1:
            raise ReproError(
                f"tenant max_inflight must be >= 1, got {self.max_inflight}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError(
                f"tenant deadline_ms must be > 0, got {self.deadline_ms}")
        if self.strategy not in STRATEGIES:
            raise ReproError(
                f"unknown tenant strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}")


class Tenant:
    """One tenant: an isolated session plus quota/accounting state.

    The session's engine is only thread-compatible — ``lock`` must be
    held around every evaluation (the async dispatcher does this in
    its executor threads).  Admission state (``inflight``) is guarded
    by the registry's lock, not this one, so admission control never
    waits behind a long count.
    """

    __slots__ = ("name", "quota", "session", "lock", "inflight",
                 "requests", "errors", "rejected", "budget_exceeded",
                 "connections", "ephemeral")

    def __init__(self, name: str, quota: TenantQuota,
                 store: Optional[LockedStore] = None, preload: int = 0,
                 ephemeral: bool = False):
        quota.validate()
        self.name = name
        self.quota = quota
        self.ephemeral = ephemeral
        self.session = SolverSession(
            store=store,
            strategy=quota.strategy,
            max_counts=quota.max_counts,
            max_targets=quota.max_targets,
            preload=preload if store is not None else 0,
            default_deadline_ms=quota.deadline_ms)
        self.lock = threading.Lock()
        self.inflight = 0
        self.requests = 0
        self.errors = 0
        self.rejected = 0
        self.budget_exceeded = 0
        self.connections = 0

    def stats(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "rejected": self.rejected,
            "budget_exceeded": self.budget_exceeded,
            "inflight": self.inflight,
            "connections": self.connections,
            "max_inflight": self.quota.max_inflight,
            "priority": self.quota.priority,
            "strategy": self.quota.strategy,
            "deadline_ms": self.quota.deadline_ms,
            "tasks_evaluated": self.session.tasks_evaluated,
        }

    def __repr__(self) -> str:
        return (f"Tenant({self.name!r}, inflight={self.inflight}/"
                f"{self.quota.max_inflight})")


#: hello-op keys that configure a TenantQuota (everything else in the
#: hello payload is connection state, not tenant state).
_QUOTA_KEYS = ("max_inflight", "deadline_ms", "max_counts",
               "max_targets", "priority", "strategy")


class TenantRegistry:
    """All tenants of one async service, plus their shared accounting.

    ``get_or_create(name, quota)`` reuses an existing tenant by name —
    a reconnecting client gets its warm session back — but *refuses* a
    hello that tries to reconfigure an existing tenant's quota
    (silently adopting one of two contradicting configurations is the
    failure mode the session/service constructors already refuse).
    Anonymous connections get a fresh ``conn-<n>`` tenant with the
    service-default quota.
    """

    def __init__(self, metrics: MetricsRegistry,
                 default_quota: Optional[TenantQuota] = None,
                 store: Optional[LockedStore] = None,
                 preload: int = 0):
        self._tenants: Dict[str, Tenant] = {}
        self._lock = threading.Lock()
        self._anonymous = 0
        self.default_quota = default_quota or TenantQuota()
        self.store = store
        self.preload = preload
        self.metrics = metrics
        self._m_opened = metrics.counter("service.tenants.opened")
        metrics.gauge("service.tenants.active", lambda: len(self._tenants))
        metrics.register_collector(self._collect, monotonic=True)

    def _collect(self) -> Dict[str, int]:
        report: Dict[str, int] = {}
        with self._lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            prefix = f"service.tenant.{tenant.name}"
            report[f"{prefix}.requests"] = tenant.requests
            report[f"{prefix}.errors"] = tenant.errors
            report[f"{prefix}.rejected"] = tenant.rejected
        return report

    # ------------------------------------------------------------------
    def _build(self, name: str, quota: TenantQuota,
               ephemeral: bool = False) -> Tenant:
        tenant = Tenant(name, quota, store=self.store, preload=self.preload,
                        ephemeral=ephemeral)
        self._tenants[name] = tenant
        self._m_opened.value += 1
        return tenant

    def anonymous(self) -> Tenant:
        """A fresh single-connection tenant with the default quota."""
        with self._lock:
            self._anonymous += 1
            return self._build(f"conn-{self._anonymous}",
                               self.default_quota, ephemeral=True)

    def discard(self, tenant: Tenant) -> None:
        """Drop an ephemeral tenant once its last connection closes.

        Named tenants survive disconnects (a reconnecting client gets
        its warm session back); anonymous ``conn-<n>`` tenants would
        otherwise accumulate forever.  No-op for named tenants or when
        other connections still reference the tenant.
        """
        if not tenant.ephemeral or tenant.connections > 0:
            return
        with self._lock:
            if self._tenants.get(tenant.name) is tenant:
                del self._tenants[tenant.name]
        tenant.session.close()

    def get_or_create(self, name: str,
                      overrides: Optional[Dict[str, object]] = None
                      ) -> Tenant:
        """The named tenant, built from ``overrides`` on first use.

        A second hello for the same name must either repeat the same
        quota values or omit them; a contradicting value raises.
        """
        overrides = overrides or {}
        unknown = set(overrides) - set(_QUOTA_KEYS)
        if unknown:
            raise ReproError(
                f"unknown tenant quota key(s) {sorted(unknown)}; "
                f"expected a subset of {list(_QUOTA_KEYS)}")
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                base = {key: getattr(self.default_quota, key)
                        for key in _QUOTA_KEYS}
                base.update(overrides)
                if base.get("deadline_ms") is not None:
                    base["deadline_ms"] = float(base["deadline_ms"])
                return self._build(name, TenantQuota(**base))
            for key, value in overrides.items():
                current = getattr(tenant.quota, key)
                if key == "deadline_ms" and value is not None:
                    value = float(value)
                if value != current:
                    raise ReproError(
                        f"tenant {name!r} already exists with "
                        f"{key}={current!r}; cannot reconfigure to "
                        f"{value!r} (drain and restart the tenant "
                        f"instead)")
            return tenant

    # ------------------------------------------------------------------
    # Admission (called from the event loop; must never block on work)
    # ------------------------------------------------------------------
    def try_admit(self, tenant: Tenant) -> bool:
        """Reserve one in-flight slot; ``False`` when the quota is full."""
        with self._lock:
            if tenant.inflight >= tenant.quota.max_inflight:
                tenant.rejected += 1
                return False
            tenant.inflight += 1
            return True

    def release(self, tenant: Tenant, ok: bool,
                budget_exceeded: bool = False) -> None:
        with self._lock:
            tenant.inflight -= 1
            tenant.requests += 1
            if not ok:
                tenant.errors += 1
            if budget_exceeded:
                tenant.budget_exceeded += 1

    def total_inflight(self) -> int:
        with self._lock:
            return sum(t.inflight for t in self._tenants.values())

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            tenants = dict(self._tenants)
        return {name: tenant.stats() for name, tenant in
                sorted(tenants.items())}

    def tenants(self):
        with self._lock:
            return list(self._tenants.values())

    def close(self) -> None:
        for tenant in self.tenants():
            tenant.session.close()
