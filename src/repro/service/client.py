"""TCP client for a running ``repro serve`` daemon.

The shared client-context object behind the grouped management
commands (``repro serve ping|stats|metrics|drain``): one place that
knows how to dial the daemon, speak the JSONL line protocol, and turn
connection failures into operator-readable errors.  Every CLI handler
builds one :class:`DaemonClient` from the shared ``--host``/``--port``
options and calls a method — the kdctl idiom (command groups over one
client object) without a third-party CLI framework.

Connection reuse: the client holds **one persistent connection** and
reuses it across requests (both daemons answer many lines per
connection).  A dropped connection is redialed transparently on the
next request — connection state is an implementation detail, never an
error the caller sees, unless redialing itself keeps failing.  Pass
``persistent=False`` to restore the legacy dial-per-request behaviour
(the bench suite uses it as the ablation baseline).

Fault tolerance: a daemon restart (or a connect flap injected through
:mod:`repro.faults.inject`) shows up here as ``ConnectionRefusedError``
or ``ConnectionResetError``; the client retries those with jittered
exponential backoff up to ``retries`` times before surfacing a
:class:`~repro.errors.ReproError`.  Backoff affects *timing only* —
response bytes are whatever the daemon finally answers.
:meth:`DaemonClient.wait_until_ready` turns the same loop into a
startup rendezvous for CLI scripts and CI smoke jobs.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Dict, Optional

from repro.batch.tasks import canonical_json
from repro.errors import ReproError
from repro.faults.inject import should_inject

#: Retryable dial failures: the daemon is (re)starting or dropped the
#: connection mid-exchange.  Other ``OSError``s (unresolvable host,
#: permission) are not transient and fail immediately.
_TRANSIENT = (ConnectionRefusedError, ConnectionResetError,
              BrokenPipeError)

DEFAULT_RETRIES = 2
_RETRY_BASE_DELAY = 0.05


def backoff_delay(attempt: int, base: float = _RETRY_BASE_DELAY,
                  rng=random.random) -> float:
    """Jittered exponential backoff: ``base * 2^attempt * [0.5, 1.0)``.

    Exposed as a function so tests can pin ``rng`` and check the
    schedule; production callers never see the values — only the
    sleeps.
    """
    return base * (2 ** attempt) * (0.5 + 0.5 * rng())


class DaemonClient:
    """Line-protocol client for one daemon address.

    Persistent by default: the first request dials, later requests
    reuse the socket, and a connection dropped between requests (a
    daemon restart) is redialed transparently with the same backoff
    schedule a failing first dial gets.  Raises
    :class:`~repro.errors.ReproError` on connection failure or a
    malformed response, so CLI handlers surface one clean error line.

    Retrying a request is safe: control ops are idempotent and task
    lines are deterministic pure computation, so a second exchange can
    only repeat the first answer.

    Usable as a context manager; :meth:`close` drops the held
    connection (the daemon handles an unannounced disconnect fine, but
    long-lived embedders should close promptly to free the daemon-side
    connection state).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 10.0, retries: int = DEFAULT_RETRIES,
                 persistent: bool = True):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.persistent = persistent
        #: Transient dial failures seen (for tests and diagnostics).
        self.connect_failures = 0
        #: Successful (re)dials (for tests: 1 == connection was reused).
        self.connects = 0
        self._sock: Optional[socket.socket] = None
        self._wire = None

    # -------------------------------------------------- connection state
    def _connect(self):
        """Dial and cache a connection; returns the buffered wire."""
        if should_inject("client.connect"):
            raise ConnectionRefusedError("connection refused (injected)")
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        self.connects += 1
        if not self.persistent:
            return sock, sock.makefile("rw", encoding="utf-8")
        self._sock = sock
        self._wire = sock.makefile("rw", encoding="utf-8")
        return self._sock, self._wire

    def _drop(self) -> None:
        if self._wire is not None:
            try:
                self._wire.close()
            except OSError:
                pass
            self._wire = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the held connection (a later request redials)."""
        self._drop()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------- line protocol
    def _exchange(self, payload_line: str) -> str:
        """One write → read cycle; raises raw socket errors.

        Persistent mode reuses the held connection when there is one.
        A daemon that died since the last request surfaces here as a
        reset/EOF — mapped to ``ConnectionResetError`` so the retry
        loop redials instead of failing the request.
        """
        if self.persistent:
            reused = self._wire is not None
            if not reused:
                self._connect()
            try:
                self._wire.write(payload_line)
                self._wire.flush()
                answer = self._wire.readline()
            except _TRANSIENT:
                self._drop()
                raise
            except OSError:
                self._drop()
                raise
            if not answer and reused:
                # EOF on a reused connection: the daemon went away
                # between requests (restart, idle drop).  Treat it as
                # transient so the retry loop redials — a fresh
                # connection answering EOF is a real protocol error
                # and stays one.
                self._drop()
                raise ConnectionResetError(
                    "daemon closed the persistent connection")
            return answer
        sock, wire = self._connect()
        with sock:
            wire.write(payload_line)
            wire.flush()
            return wire.readline()

    def request_line(self, line: str) -> Dict[str, object]:
        """Send one protocol line, return the decoded response object."""
        payload_line = line.rstrip("\n") + "\n"
        attempts = self.retries + 1
        answer = ""
        for attempt in range(attempts):
            try:
                answer = self._exchange(payload_line)
                break
            except _TRANSIENT as exc:
                self.connect_failures += 1
                if attempt + 1 >= attempts:
                    raise ReproError(
                        f"cannot reach daemon at {self.host}:{self.port} "
                        f"after {attempts} attempt(s): {exc}")
                time.sleep(backoff_delay(attempt))
            except OSError as exc:
                raise ReproError(
                    f"cannot reach daemon at {self.host}:{self.port}: {exc}")
        if not answer.strip():
            raise ReproError(
                f"daemon at {self.host}:{self.port} closed the "
                f"connection without answering")
        try:
            payload = json.loads(answer)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"daemon at {self.host}:{self.port} sent a non-JSON "
                f"response: {exc}")
        if not isinstance(payload, dict):
            raise ReproError(
                f"daemon at {self.host}:{self.port} sent a non-object "
                f"response: {payload!r}")
        return payload

    def control(self, op: str, **extra: object) -> Dict[str, object]:
        """Send one control op (``{"op": ...}``) and decode the answer."""
        record: Dict[str, object] = {"op": op}
        record.update(extra)
        return self.request_line(canonical_json(record))

    # -------------------------------------------------- operator verbs
    def ping(self) -> Dict[str, object]:
        return self.control("ping")

    def stats(self) -> Dict[str, object]:
        return self.control("stats")

    def metrics(self, format: Optional[str] = None) -> Dict[str, object]:
        if format is not None:
            return self.control("metrics", format=format)
        return self.control("metrics")

    def drain(self) -> Dict[str, object]:
        return self.control("drain")

    def shutdown(self) -> Dict[str, object]:
        return self.control("shutdown")

    def hello(self, tenant: Optional[str] = None,
              mode: Optional[str] = None,
              **quota: object) -> Dict[str, object]:
        """Bind this connection to a tenant / response mode (async
        daemon only; the threaded daemon answers with its unknown-op
        record)."""
        record: Dict[str, object] = {}
        if tenant is not None:
            record["tenant"] = tenant
        if mode is not None:
            record["mode"] = mode
        record.update(quota)
        return self.control("hello", **record)

    def wait_until_ready(self, timeout: float = 10.0) -> float:
        """Block until the daemon answers ``ping``; seconds waited.

        Polls with short capped-exponential sleeps so a freshly
        spawned daemon is noticed within milliseconds of binding.
        Raises :class:`~repro.errors.ReproError` when ``timeout``
        elapses first — the CI smoke jobs' replacement for
        ``sleep 2 && hope``.
        """
        start = time.monotonic()
        deadline = start + timeout
        delay = 0.02
        while True:
            try:
                if bool(self.ping().get("ok")):
                    return time.monotonic() - start
            except ReproError:
                pass
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"daemon at {self.host}:{self.port} not ready "
                    f"after {timeout:.1f}s")
            time.sleep(delay)
            delay = min(delay * 2.0, 0.25)

    def __repr__(self) -> str:
        mode = "persistent" if self.persistent else "per-request"
        return f"DaemonClient({self.host}:{self.port}, {mode})"
