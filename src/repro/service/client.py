"""TCP client for a running ``repro serve`` daemon.

The shared client-context object behind the grouped management
commands (``repro serve ping|stats|metrics|drain``): one place that
knows how to dial the daemon, speak the JSONL line protocol, and turn
connection failures into operator-readable errors.  Every CLI handler
builds one :class:`DaemonClient` from the shared ``--host``/``--port``
options and calls a method — the kdctl idiom (command groups over one
client object) without a third-party CLI framework.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional

from repro.batch.tasks import canonical_json
from repro.errors import ReproError


class DaemonClient:
    """Line-protocol client for one daemon address.

    Each call dials a fresh connection (control ops are rare and
    cheap; a persistent connection would hold a daemon handler thread
    hostage between CLI invocations anyway).  Raises
    :class:`~repro.errors.ReproError` on connection failure or a
    malformed response, so CLI handlers surface one clean error line.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 10.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -------------------------------------------------- line protocol
    def request_line(self, line: str) -> Dict[str, object]:
        """Send one protocol line, return the decoded response object."""
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=self.timeout) as conn:
                wire = conn.makefile("rw", encoding="utf-8")
                wire.write(line.rstrip("\n") + "\n")
                wire.flush()
                answer = wire.readline()
        except OSError as exc:
            raise ReproError(
                f"cannot reach daemon at {self.host}:{self.port}: {exc}")
        if not answer.strip():
            raise ReproError(
                f"daemon at {self.host}:{self.port} closed the "
                f"connection without answering")
        try:
            payload = json.loads(answer)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"daemon at {self.host}:{self.port} sent a non-JSON "
                f"response: {exc}")
        if not isinstance(payload, dict):
            raise ReproError(
                f"daemon at {self.host}:{self.port} sent a non-object "
                f"response: {payload!r}")
        return payload

    def control(self, op: str, **extra: object) -> Dict[str, object]:
        """Send one control op (``{"op": ...}``) and decode the answer."""
        record: Dict[str, object] = {"op": op}
        record.update(extra)
        return self.request_line(canonical_json(record))

    # -------------------------------------------------- operator verbs
    def ping(self) -> Dict[str, object]:
        return self.control("ping")

    def stats(self) -> Dict[str, object]:
        return self.control("stats")

    def metrics(self, format: Optional[str] = None) -> Dict[str, object]:
        if format is not None:
            return self.control("metrics", format=format)
        return self.control("metrics")

    def drain(self) -> Dict[str, object]:
        return self.control("drain")

    def shutdown(self) -> Dict[str, object]:
        return self.control("shutdown")

    def __repr__(self) -> str:
        return f"DaemonClient({self.host}:{self.port})"
