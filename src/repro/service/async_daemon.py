"""The asyncio multi-tenant service front end (DESIGN.md §16).

The threaded daemon (:mod:`repro.service.daemon`) is one session behind
one engine lock behind one thread-per-connection TCP loop: every
concurrent client queues on the same lock, and management clients dial
a fresh connection per request.  This module rebuilds the front end on
one event loop:

* **Connection multiplexing** — ``asyncio`` streams hold thousands of
  persistent connections on one thread; no per-connection OS thread.
* **Per-tenant sessions** — each connection (or each named tenant
  across connections; see ``{"op": "hello"}``) gets its own
  :class:`~repro.service.tenant.Tenant`: an isolated session with its
  own engine, memo bounds, strategy and PR 8 budget defaults, so
  independent tenants count in parallel on the bounded executor
  instead of convoying on one lock.
* **Priorities** — every request may carry ``"priority": <int>``
  (lower runs earlier; the tenant quota sets the default).  Dispatch
  is a single priority queue drained by ``workers`` dispatcher
  coroutines, each running the CPU-bound evaluation on the executor.
* **Admission-control backpressure** — the dispatch queue and each
  tenant's in-flight window are bounded; an over-limit request is
  answered *immediately* with a structured ``overloaded`` record
  (``error_kind: "overloaded"``, ``reason: queue-full | tenant-quota
  | draining``) instead of buffering without bound.
* **Graceful drain** — ``{"op": "drain"}`` (or SIGTERM) stops
  admission, answers everything in flight, then closes the servers.
* **Streaming batch** — ``{"op": "batch", "tasks": [...]}`` admits a
  whole task list and streams one JSONL result line per task *as each
  finishes* (completion order), closing with a summary line.

Protocol compatibility: request lines are exactly the threaded
daemon's — the batch task codec plus control ops — and responses for
task lines are byte-identical (evaluation funnels through the same
:func:`~repro.batch.runner.evaluate_envelope`).  A connection answers
in request order by default, so piping a scenario file through the
async stdio front end stays byte-identical to ``repro batch run
--workers 1``.  ``{"op": "hello", "mode": "multiplex"}`` switches a
connection to completion-order responses, where each request may carry
a ``"rid"`` echo field for client-side correlation (``rid`` is
stripped before evaluation, so task seeds — and therefore result
bytes — never depend on it).

The HTTP/WebSocket facade for browser clients lives in
:mod:`repro.service.httpgate`, on top of the same dispatch core.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, IO, List, Optional, Tuple

from repro.batch.runner import evaluate_envelope
from repro.batch.tasks import canonical_json
from repro.errors import ReproError
from repro.obs.logs import StructuredLogger, new_request_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import collect_phases
from repro.service.daemon import DEFAULT_WORKERS, ServiceStats
from repro.service.tenant import (
    LockedStore,
    Tenant,
    TenantQuota,
    TenantRegistry,
)

DEFAULT_MAX_QUEUE = 256
ASYNC_CONTROL_OPS = ("ping", "stats", "metrics", "drain", "shutdown",
                     "hello", "batch")

_QUEUE_STOP = object()


class _Job:
    """One admitted request travelling through the priority queue."""

    __slots__ = ("line", "tenant", "future", "enqueued", "rid")

    def __init__(self, line: str, tenant: Tenant,
                 future: "asyncio.Future[str]", rid=None):
        self.line = line
        self.tenant = tenant
        self.future = future
        self.enqueued = time.monotonic()
        self.rid = rid


class AsyncSolverService:
    """The dispatch core every async front end (TCP/stdio/HTTP) shares.

    ``workers`` bounds CPU-bound evaluation concurrency (dispatcher
    coroutines × executor threads); ``max_queue`` bounds how many
    admitted requests may wait for a dispatcher before new ones are
    answered ``overloaded``.  Tenant defaults (``max_inflight``,
    ``request_deadline_ms``, ``strategy``, memo bounds) seed the quota
    every anonymous connection gets; named tenants override them via
    the hello op.  A ``store_path`` opens one persistent store shared
    by every tenant through a locking facade.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 store_path: Optional[str] = None,
                 shards: Optional[int] = None,
                 memory_tier: Optional[int] = None,
                 preload_pack: Optional[str] = None,
                 strategy: str = "auto",
                 preload: int = 0,
                 logger: Optional[StructuredLogger] = None,
                 request_deadline_ms: Optional[float] = None,
                 max_inflight: Optional[int] = None):
        self.workers = max(1, workers)
        self.max_queue = max(1, max_queue)
        self.logger = logger
        self.started_at = time.monotonic()
        self._store: Optional[LockedStore] = None
        self._owns_store = False
        if store_path is not None:
            from repro.batch.store import import_warm_pack, open_store

            raw = open_store(store_path, shards=shards,
                             memory_tier=memory_tier)
            if preload_pack is not None:
                import_warm_pack(raw, preload_pack)
            self._store = LockedStore(raw)
            self._owns_store = True
        elif shards is not None or memory_tier is not None \
                or preload_pack is not None:
            raise ReproError(
                "shards/memory_tier/preload_pack require store_path")

        self.metrics = MetricsRegistry()
        self.stats_counters = ServiceStats(self.metrics)
        default_quota = TenantQuota(
            max_inflight=max_inflight if max_inflight is not None
            else TenantQuota.max_inflight,
            deadline_ms=request_deadline_ms,
            strategy=strategy)
        self.tenants = TenantRegistry(self.metrics,
                                      default_quota=default_quota,
                                      store=self._store,
                                      preload=preload)
        # The default tenant answers stdio mode and any connection that
        # never says hello with a tenant name of its own is *not* given
        # this one — it gets an anonymous isolated tenant.  The default
        # tenant's session registry is the one attached below, so the
        # metrics op reports engine/store counters for the resident
        # session exactly like the threaded daemon.
        self.default_tenant = self.tenants.get_or_create("default")
        self.metrics.attach(self.default_tenant.session.metrics)
        self._m_overloaded = self.metrics.counter("service.overloaded")
        self._queued_us = self.metrics.histogram("service.request.queued_us")
        self.metrics.gauge("service.workers", lambda: self.workers)
        self.metrics.gauge("service.queue.depth", self.queue_depth)
        self.metrics.gauge("service.inflight",
                           lambda: self.tenants.total_inflight())
        self.metrics.gauge(
            "service.uptime_s",
            lambda: round(time.monotonic() - self.started_at, 3))

        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-async")
        self._queue: "asyncio.PriorityQueue" = None  # built in start()
        self._seq = itertools.count()
        self._dispatchers: List["asyncio.Task"] = []
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build the queue and dispatchers on the running loop."""
        if self._queue is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue()
        self._stopped = asyncio.Event()
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch())
            for _ in range(self.workers)]

    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        """Stop admitting; finish in flight; wake :meth:`run_until_drained`.

        Callable from signal handlers and other threads (it only flips
        a flag and pokes the loop).
        """
        self._draining = True
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._check_quiesced)
            except RuntimeError:  # loop already closed
                pass

    def _check_quiesced(self) -> None:
        if self._draining and self.queue_depth() == 0 \
                and self.tenants.total_inflight() == 0 \
                and self._stopped is not None:
            self._stopped.set()

    async def run_until_drained(self) -> None:
        """Block until a drain/shutdown op (or signal) fully quiesces."""
        await self._stopped.wait()

    async def aclose(self) -> None:
        """Stop dispatchers and flush/close owned state."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._queue is not None:
            for _ in self._dispatchers:
                self._queue.put_nowait((1 << 30, next(self._seq),
                                        _QUEUE_STOP))
            await asyncio.gather(*self._dispatchers,
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)
        self.tenants.close()
        if self._owns_store and self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # Admission + dispatch
    # ------------------------------------------------------------------
    def _overloaded(self, reason: str, tenant: Tenant,
                    task_id=None, rid=None) -> str:
        self._m_overloaded.value += 1
        record = {
            "id": task_id, "kind": None, "ok": False,
            "error": f"overloaded: {reason} "
                     f"(queue depth {self.queue_depth()}, tenant "
                     f"{tenant.name} inflight {tenant.inflight}/"
                     f"{tenant.quota.max_inflight})",
            "error_kind": "overloaded",
            "reason": reason,
        }
        if rid is not None:
            record["rid"] = rid
        return canonical_json(record)

    def submit(self, tenant: Tenant, line: str,
               record: Optional[dict] = None,
               priority: Optional[int] = None,
               rid=None) -> "asyncio.Future[str]":
        """Admit one task line for ``tenant``; resolves to the response.

        Admission control runs here, on the event loop, in constant
        time: a rejected request's future resolves immediately with the
        structured ``overloaded`` record.  ``record`` is the parsed
        line when the caller already has it (to pull ``id``/
        ``priority`` without re-parsing).
        """
        future: "asyncio.Future[str]" = self._loop.create_future()
        task_id = record.get("id") if isinstance(record, dict) else None
        if priority is None and isinstance(record, dict):
            raw = record.get("priority")
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                priority = int(raw)
        if priority is None:
            priority = tenant.quota.priority
        if self._draining:
            future.set_result(
                self._overloaded("draining", tenant, task_id, rid))
            return future
        if not self.tenants.try_admit(tenant):
            future.set_result(
                self._overloaded("tenant-quota", tenant, task_id, rid))
            return future
        if self.queue_depth() >= self.max_queue:
            self.tenants.release(tenant, ok=False)
            future.set_result(
                self._overloaded("queue-full", tenant, task_id, rid))
            return future
        job = _Job(line, tenant, future, rid=rid)
        self._queue.put_nowait((priority, next(self._seq), job))
        return future

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            _priority, _seq, job = await self._queue.get()
            if job is _QUEUE_STOP:
                return
            self._queued_us.observe(
                (time.monotonic() - job.enqueued) * 1e6)
            try:
                response, ok, budget_exceeded = await loop.run_in_executor(
                    self._executor, self._evaluate, job.tenant, job.line,
                    job.rid)
            except Exception as exc:  # noqa: BLE001 — keep dispatching
                ok, budget_exceeded = False, False
                response = canonical_json({
                    "id": None, "kind": None, "ok": False,
                    "error": f"InternalError: {type(exc).__name__}: {exc}",
                })
            self.tenants.release(job.tenant, ok=ok,
                                 budget_exceeded=budget_exceeded)
            if not job.future.cancelled():
                job.future.set_result(response)
            self._check_quiesced()

    def _evaluate(self, tenant: Tenant, line: str,
                  rid=None) -> Tuple[str, bool, bool]:
        """Executor-side evaluation under the tenant's engine lock.

        Same error-isolation contract as the threaded daemon: library
        errors became records inside ``evaluate_envelope``; anything
        else becomes an ``InternalError`` record in the dispatcher.
        """
        request_id = new_request_id()
        start = time.perf_counter()
        phases: Dict[str, float] = {}
        with tenant.lock:
            if self.logger is not None:
                with collect_phases() as phases:
                    envelope = evaluate_envelope(line, tenant.session)
            else:
                envelope = evaluate_envelope(line, tenant.session)
        kind = envelope.get("kind")
        ok = bool(envelope.get("ok"))
        budget_exceeded = envelope.get("error_kind") == "budget-exceeded"
        if rid is not None:
            envelope = dict(envelope)
            envelope["rid"] = rid
        elapsed = time.perf_counter() - start
        self.stats_counters.record(kind, ok, elapsed,
                                   budget_exceeded=budget_exceeded)
        if self.logger is not None:
            self.logger.request(request_id, kind=kind, ok=ok,
                                elapsed_s=elapsed,
                                task_id=envelope.get("id"), phases=phases)
        return canonical_json(envelope), ok, budget_exceeded

    # ------------------------------------------------------------------
    # Control ops (answered inline on the event loop)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        service = self.stats_counters.snapshot()
        service["uptime_s"] = round(time.monotonic() - self.started_at, 3)
        service["workers"] = self.workers
        service["queue_depth"] = self.queue_depth()
        service["inflight"] = self.tenants.total_inflight()
        service["overloaded"] = self._m_overloaded.value
        service["draining"] = self._draining
        with self.default_tenant.lock:
            session = self.default_tenant.session.stats()
        return {"service": service, "session": session,
                "tenants": self.tenants.stats()}

    def control_record(self, record: dict, connection=None) -> Optional[str]:
        """The single-line answer to one control record, or ``None``
        when the op needs connection-level handling (hello/batch —
        the front ends intercept those before calling here)."""
        op = record.get("op")
        self.stats_counters.record_control()
        rid = record.get("rid")

        def _reply(payload: Dict[str, object]) -> str:
            if rid is not None:
                payload["rid"] = rid
            return canonical_json(payload)

        if op == "ping":
            return _reply({"ok": True, "op": "ping"})
        if op == "stats":
            return _reply({"ok": True, "op": "stats", "stats": self.stats()})
        if op == "metrics":
            with self.default_tenant.lock:
                if record.get("format") == "prometheus":
                    return _reply({"ok": True, "op": "metrics",
                                   "format": "prometheus",
                                   "exposition": self.metrics.exposition()})
                snapshot = self.metrics.snapshot()
            return _reply({"ok": True, "op": "metrics",
                           "metrics": snapshot})
        if op == "drain":
            self.request_drain()
            return _reply({"ok": True, "op": "drain", "draining": True})
        if op == "shutdown":
            self.request_drain()
            return _reply({"ok": True, "op": "shutdown"})
        return _reply({
            "ok": False, "op": str(op),
            "error": f"unknown control op {op!r}; "
                     f"expected one of {list(ASYNC_CONTROL_OPS)}"})


def parse_control(line: str) -> Optional[dict]:
    """The parsed record if ``line`` is a control op, else ``None``."""
    stripped = line.strip()
    if not stripped.startswith("{") or '"op"' not in stripped:
        return None
    try:
        record = json.loads(stripped)
    except json.JSONDecodeError:
        return None
    if isinstance(record, dict) and "op" in record:
        return record
    return None


def strip_rid(line: str) -> Tuple[str, object]:
    """``(evaluation line, rid)`` for one task line.

    ``rid`` is a pure correlation handle: it must not reach
    ``task_seed`` (witness randomness is a content hash of the task
    record), so a rid-carrying line is re-serialized without it.
    Invalid JSON passes through untouched — evaluation will answer
    with the codec's error record.
    """
    if '"rid"' not in line:
        return line, None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return line, None
    if not isinstance(record, dict) or "rid" not in record:
        return line, None
    rid = record.pop("rid")
    return canonical_json(record), rid


# ----------------------------------------------------------------------
# Connection handling (TCP)
# ----------------------------------------------------------------------
class _Connection:
    """Per-connection state: the tenant, the response mode, the writer.

    Ordered mode (default) answers in request order — a deque of
    futures drained by one writer coroutine, exactly the stdio
    contract.  Multiplex mode writes each response the moment it
    resolves; clients correlate by ``rid``/task id.
    """

    def __init__(self, service: AsyncSolverService,
                 writer: asyncio.StreamWriter):
        self.service = service
        self.writer = writer
        self.tenant: Optional[Tenant] = None
        self.multiplex = False
        self._items: "asyncio.Queue" = asyncio.Queue()
        self._writer_task = asyncio.ensure_future(self._write_loop())
        self._write_lock = asyncio.Lock()
        self._pending: set = set()

    def ensure_tenant(self) -> Tenant:
        if self.tenant is None:
            self.tenant = self.service.tenants.anonymous()
            self.tenant.connections += 1
        return self.tenant

    # ---------------------------------------------------------- output
    async def _write_line(self, line: str) -> None:
        async with self._write_lock:
            self.writer.write(line.encode("utf-8") + b"\n")
            try:
                await self.writer.drain()
            except ConnectionError:
                pass

    async def _write_loop(self) -> None:
        while True:
            item = await self._items.get()
            if item is None:
                return
            try:
                if isinstance(item, str):
                    await self._write_line(item)
                elif isinstance(item, asyncio.Queue):
                    # A streaming block (batch op): lines arrive in
                    # completion order until the terminating None.
                    while True:
                        chunk = await item.get()
                        if chunk is None:
                            break
                        await self._write_line(chunk)
                else:  # a future resolving to one line
                    await self._write_line(await item)
            except ConnectionError:
                return

    def _emit_future(self, future: "asyncio.Future[str]") -> None:
        if self.multiplex:
            task = asyncio.ensure_future(self._forward(future))
            self._pending.add(task)
            task.add_done_callback(self._pending.discard)
        else:
            self._items.put_nowait(future)

    async def _forward(self, future: "asyncio.Future[str]") -> None:
        await self._write_line(await future)

    def emit_line(self, line: str) -> None:
        if self.multiplex:
            task = asyncio.ensure_future(self._write_line(line))
            self._pending.add(task)
            task.add_done_callback(self._pending.discard)
        else:
            self._items.put_nowait(line)

    # ---------------------------------------------------------- input
    def handle_line(self, line: str) -> bool:
        """Process one request line; ``False`` stops the read loop."""
        service = self.service
        control = parse_control(line)
        if control is not None:
            op = control.get("op")
            if op == "hello":
                self.emit_line(self._handle_hello(control))
                return True
            if op == "batch":
                self._handle_batch(control)
                return True
            response = service.control_record(control)
            self.emit_line(response)
            return op not in ("drain", "shutdown")
        eval_line, rid = strip_rid(line)
        record = None
        if rid is not None or '"priority"' in line:
            try:
                record = json.loads(eval_line)
            except json.JSONDecodeError:
                record = None
        self._emit_future(service.submit(
            self.ensure_tenant(), eval_line, record=record, rid=rid))
        return True

    def _handle_hello(self, record: dict) -> str:
        service = self.service
        rid = record.get("rid")
        quota_keys = ("max_inflight", "deadline_ms", "max_counts",
                      "max_targets", "priority", "strategy")
        try:
            unknown = set(record) - set(quota_keys) - \
                {"op", "rid", "tenant", "mode"}
            if unknown:
                raise ReproError(
                    f"unknown hello key(s) {sorted(unknown)}; expected "
                    f"tenant/mode plus quota keys {list(quota_keys)}")
            name = record.get("tenant")
            overrides = {key: record[key]
                         for key in quota_keys if key in record}
            if name is not None:
                if not isinstance(name, str) or not name:
                    raise ReproError(
                        f"hello tenant must be a non-empty string, "
                        f"got {name!r}")
                if self.tenant is not None:
                    self.tenant.connections -= 1
                self.tenant = service.tenants.get_or_create(name, overrides)
                self.tenant.connections += 1
            elif overrides:
                raise ReproError(
                    "hello quota overrides require a tenant name")
            mode = record.get("mode", "multiplex" if "mode" in record
                              else None)
            if mode is not None:
                if mode not in ("ordered", "multiplex"):
                    raise ReproError(
                        f"hello mode must be 'ordered' or 'multiplex', "
                        f"got {mode!r}")
                self.multiplex = mode == "multiplex"
        except ReproError as exc:
            payload = {"ok": False, "op": "hello", "error": str(exc)}
        else:
            payload = {"ok": True, "op": "hello",
                       "tenant": self.tenant.name if self.tenant else None,
                       "mode": "multiplex" if self.multiplex else "ordered",
                       "draining": service.draining}
        if rid is not None:
            payload["rid"] = rid
        return canonical_json(payload)

    def _handle_batch(self, record: dict) -> None:
        """Admit every task of a batch op; stream results as they land.

        Each result line is the task's ordinary envelope (it carries
        the task ``id``); the closing summary line reports how many
        were answered vs rejected at admission.  In ordered mode the
        stream occupies one slot of the response order; in multiplex
        mode lines interleave with other traffic.
        """
        service = self.service
        rid = record.get("rid")
        tasks = record.get("tasks")
        if not isinstance(tasks, list):
            payload = {"ok": False, "op": "batch",
                       "error": "batch op needs a 'tasks' list"}
            if rid is not None:
                payload["rid"] = rid
            self.emit_line(canonical_json(payload))
            return
        tenant = self.ensure_tenant()
        priority = record.get("priority")
        if not isinstance(priority, int) or isinstance(priority, bool):
            priority = None
        stream: "asyncio.Queue" = asyncio.Queue()
        if not self.multiplex:
            # The stream occupies one slot in the ordered response
            # sequence; multiplex writes each line directly instead.
            self._items.put_nowait(stream)
        futures = []
        for task in tasks:
            line = canonical_json(task) if isinstance(task, dict) \
                else str(task)
            futures.append(service.submit(
                tenant, line,
                record=task if isinstance(task, dict) else None,
                priority=priority, rid=rid))

        async def _collect() -> None:
            done = 0
            for future in asyncio.as_completed(futures):
                result = await future
                done += 1
                if self.multiplex:
                    await self._write_line(result)
                else:
                    stream.put_nowait(result)
            summary = {"ok": True, "op": "batch", "count": done}
            if rid is not None:
                summary["rid"] = rid
            if self.multiplex:
                await self._write_line(canonical_json(summary))
            else:
                stream.put_nowait(canonical_json(summary))
                stream.put_nowait(None)

        task = asyncio.ensure_future(_collect())
        self._pending.add(task)
        task.add_done_callback(self._pending.discard)

    async def close(self) -> None:
        try:
            if self._pending:
                await asyncio.gather(*list(self._pending),
                                     return_exceptions=True)
            self._items.put_nowait(None)
            await self._writer_task
        except asyncio.CancelledError:
            # Event-loop teardown while responses were still pending
            # (drain with a client that never disconnected): stop the
            # helpers without awaiting them — the work itself was
            # either answered already or rejected at admission.
            self._writer_task.cancel()
            for task in list(self._pending):
                task.cancel()
        self._release_tenant()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    def abort(self) -> None:
        """Synchronous teardown for a cancelled connection task."""
        self._writer_task.cancel()
        for task in list(self._pending):
            task.cancel()
        self._release_tenant()
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass

    def _release_tenant(self) -> None:
        if self.tenant is not None:
            self.tenant.connections -= 1
            self.service.tenants.discard(self.tenant)
            self.tenant = None


async def handle_connection(service: AsyncSolverService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """One TCP connection: JSONL request lines in, response lines out.

    A cancelled handler task (event-loop teardown racing a still-open
    client) finishes normally after a synchronous abort — otherwise
    asyncio's stream machinery logs the cancellation as an error.
    """
    connection = _Connection(service, writer)
    cancelled = False
    try:
        while True:
            try:
                raw = await reader.readline()
            except ConnectionError:
                break
            if not raw:
                break
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            if not connection.handle_line(line):
                break
    except asyncio.CancelledError:
        cancelled = True
    finally:
        if cancelled:
            connection.abort()
        else:
            await connection.close()


# ----------------------------------------------------------------------
# Front ends
# ----------------------------------------------------------------------
async def serve_async_tcp(service: AsyncSolverService,
                          host: str = "127.0.0.1", port: int = 0,
                          http_port: Optional[int] = None,
                          ready: Optional[threading.Event] = None,
                          bound: Optional[list] = None) -> None:
    """Serve the line protocol (and optional HTTP/WebSocket facade)
    until drained.

    ``port=0`` binds an ephemeral port; bound addresses are appended
    to ``bound`` (the TCP address first, then the HTTP one when
    enabled) and ``ready`` is set once all servers accept connections.
    """
    await service.start()
    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w), host, port)
    http_server = None
    if http_port is not None:
        from repro.service.httpgate import handle_http

        http_server = await asyncio.start_server(
            lambda r, w: handle_http(service, r, w), host, http_port)
    if bound is not None:
        bound.append(server.sockets[0].getsockname()[:2])
        if http_server is not None:
            bound.append(http_server.sockets[0].getsockname()[:2])
    if ready is not None:
        ready.set()
    try:
        await service.run_until_drained()
    finally:
        server.close()
        await server.wait_closed()
        if http_server is not None:
            http_server.close()
            await http_server.wait_closed()
        if service.default_tenant is not None:
            with service.default_tenant.lock:
                service.default_tenant.session.flush()


async def serve_async_stdio(service: AsyncSolverService,
                            source: Optional[Iterable[str]] = None,
                            sink: Optional[IO[str]] = None) -> int:
    """Answer a JSONL stream on the default tenant, responses in
    request order — byte-identical to the threaded stdio front end
    (and therefore to ``repro batch run --workers 1``).

    Reading happens on the executor so the event loop keeps
    dispatching while a slow producer trickles lines in; the bounded
    dispatch queue plus the default tenant's in-flight window is the
    backpressure (the reader stalls in :meth:`_reader_gate` rather
    than buffering without limit).  Returns response lines written.
    """
    await service.start()
    loop = asyncio.get_running_loop()
    if source is None:
        source = sys.stdin
    sink = sys.stdout if sink is None else sink
    iterator = iter(source)
    tenant = service.default_tenant
    written = 0
    pending: "asyncio.Queue" = asyncio.Queue()

    def _next_line() -> Optional[str]:
        try:
            return next(iterator)
        except StopIteration:
            return None

    async def _write_all() -> int:
        count = 0
        while True:
            item = await pending.get()
            if item is None:
                return count
            line = item if isinstance(item, str) else await item
            await loop.run_in_executor(None, _blocking_write, sink, line)
            count += 1

    writer_task = asyncio.ensure_future(_write_all())
    while True:
        line = await loop.run_in_executor(None, _next_line)
        if line is None:
            break
        if not line.strip():
            continue
        control = parse_control(line)
        if control is not None:
            op = control.get("op")
            pending.put_nowait(service.control_record(control))
            if op in ("drain", "shutdown"):
                break
            continue
        if service.draining:
            break
        # Backpressure: wait for quota room instead of queueing an
        # unbounded pile of overloaded responses for a file stream.
        while tenant.inflight >= tenant.quota.max_inflight \
                or service.queue_depth() >= service.max_queue:
            await asyncio.sleep(0.001)
        eval_line, rid = strip_rid(line)
        pending.put_nowait(service.submit(tenant, eval_line, rid=rid))
    pending.put_nowait(None)
    written = await writer_task
    with tenant.lock:
        tenant.session.flush()
    return written


def _blocking_write(sink: IO[str], line: str) -> None:
    sink.write(line + "\n")
    sink.flush()


# ----------------------------------------------------------------------
# Embedding helper (tests, benchmarks, load tools)
# ----------------------------------------------------------------------
class AsyncDaemonHandle:
    """Run an async daemon on a background thread; stop it cleanly.

    The bench harness and the tests need a live daemon inside one
    process: ``start()`` spins the event loop up on its own thread and
    returns once the TCP (and optional HTTP) sockets accept
    connections; ``stop()`` drains and joins.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 http_port: Optional[int] = None, **service_kwargs):
        self._host = host
        self._port = port
        self._http_port = http_port
        self._kwargs = service_kwargs
        self.service: Optional[AsyncSolverService] = None
        self.address: Optional[tuple] = None
        self.http_address: Optional[tuple] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._bound: list = []

    def __enter__(self) -> "AsyncDaemonHandle":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "AsyncDaemonHandle":
        self.service = AsyncSolverService(**self._kwargs)

        def _run() -> None:
            asyncio.run(self._main())

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-async-daemon")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("async daemon did not start within 30s")
        self.address = tuple(self._bound[0])
        if self._http_port is not None:
            self.http_address = tuple(self._bound[1])
        return self

    async def _main(self) -> None:
        try:
            await serve_async_tcp(self.service, host=self._host,
                                  port=self._port,
                                  http_port=self._http_port,
                                  ready=self._ready, bound=self._bound)
        finally:
            await self.service.aclose()
            self._ready.set()  # unblock start() even on bind failure

    def stop(self) -> None:
        if self.service is not None:
            self.service.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=30)
            if self._thread.is_alive():  # pragma: no cover — deadlock aid
                raise ReproError("async daemon did not drain within 30s")
