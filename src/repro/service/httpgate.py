"""HTTP/1.1 + WebSocket facade over the async dispatch core.

Browser clients (and plain ``curl``) cannot speak the raw JSONL line
protocol, so the async daemon optionally binds a second port serving a
deliberately tiny HTTP surface — hand-rolled on asyncio streams
because the toolchain constraint forbids new dependencies:

* ``GET /healthz`` — ``200 {"ok": true, "draining": ...}`` liveness.
* ``GET /metrics`` — the Prometheus text exposition (same bytes as
  ``repro serve metrics --format prometheus``).
* ``POST /task`` — body is one task record (or one control op);
  answers the canonical JSON envelope.  Admission control applies:
  an overloaded rejection answers ``429``, draining ``503``.
* ``GET /ws`` — RFC 6455 WebSocket upgrade.  Each text frame carries
  one protocol line (task records, control ops, ``hello``, streaming
  ``batch``); each response line comes back as one text frame.  A
  WebSocket connection is inherently multiplexed: responses arrive in
  completion order and clients correlate via ``rid``/task ``id``.

The frame codec implements only what a conforming client needs:
masked client→server frames (the RFC mandates masking), unmasked
server frames, text/ping/pong/close opcodes, and 7/16/64-bit payload
lengths.  Fragmented messages and extensions are answered with a
close frame rather than half-supported.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from typing import Dict, Optional, Tuple

from repro.batch.tasks import canonical_json
from repro.service.async_daemon import (
    AsyncSolverService,
    parse_control,
    strip_rid,
)

#: RFC 6455 §1.3 — the fixed GUID appended to the client key.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_OP_TEXT = 0x1
_OP_CLOSE = 0x8
_OP_PING = 0x9
_OP_PONG = 0xA

_MAX_BODY = 4 * 1024 * 1024  # one request body / websocket frame


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = _OP_TEXT,
                 mask: bool = False) -> bytes:
    """One complete (FIN=1) WebSocket frame.

    Servers send unmasked frames; the client helper in
    :mod:`repro.service.loadgen` sets ``mask=True`` as RFC 6455 §5.1
    requires of clients.
    """
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        # A fixed key is fine here: masking exists to defeat proxy
        # cache poisoning, not for secrecy, and the tests/load tool
        # are the only in-repo clients.
        key = b"\x37\xfa\x21\x3d"
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


async def read_frame(reader: asyncio.StreamReader
                     ) -> Tuple[int, bytes]:
    """``(opcode, payload)`` for the next frame; unmasks client frames."""
    first = await reader.readexactly(2)
    fin = first[0] & 0x80
    opcode = first[0] & 0x0F
    masked = first[1] & 0x80
    length = first[1] & 0x7F
    if not fin:
        raise ValueError("fragmented websocket frames are unsupported")
    if length == 126:
        length = struct.unpack(">H", await reader.readexactly(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", await reader.readexactly(8))[0]
    if length > _MAX_BODY:
        raise ValueError(f"websocket frame of {length} bytes exceeds "
                         f"the {_MAX_BODY} byte bound")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length)
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """``(method, path, headers, body)`` or ``None`` on EOF/garbage."""
    try:
        request_line = await reader.readline()
    except ConnectionError:
        return None
    if not request_line:
        return None
    try:
        method, path, _version = request_line.decode("ascii").split(None, 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise ValueError(f"request body of {length} bytes exceeds "
                         f"the {_MAX_BODY} byte bound")
    if length:
        body = await reader.readexactly(length)
    return method, path.split("?", 1)[0], headers, body


def _http_response(status: int, reason: str, body: bytes,
                   content_type: str = "application/json") -> bytes:
    return (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("ascii") + body


def _status_for(response_line: str) -> Tuple[int, str]:
    """Map a protocol response record onto an HTTP status."""
    try:
        record = json.loads(response_line)
    except json.JSONDecodeError:
        return 500, "Internal Server Error"
    if not isinstance(record, dict):
        return 500, "Internal Server Error"
    if record.get("ok"):
        return 200, "OK"
    if record.get("error_kind") == "overloaded":
        if record.get("reason") == "draining":
            return 503, "Service Unavailable"
        return 429, "Too Many Requests"
    return 400, "Bad Request"


# ----------------------------------------------------------------------
# Connection handler
# ----------------------------------------------------------------------
async def handle_http(service: AsyncSolverService,
                      reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
    """One HTTP connection: a single request/response, or a WS upgrade."""
    try:
        request = await _read_request(reader)
        if request is None:
            return
        method, path, headers, body = request
        if path == "/ws" and "websocket" in \
                headers.get("upgrade", "").lower():
            await _serve_websocket(service, reader, writer, headers)
            return
        writer.write(await _route(service, method, path, body))
        await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionError, ValueError):
        pass
    except asyncio.CancelledError:
        # Event-loop teardown with the client still connected; finish
        # normally so asyncio does not log the cancellation.
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _route(service: AsyncSolverService, method: str, path: str,
                 body: bytes) -> bytes:
    if path == "/healthz" and method == "GET":
        payload = canonical_json({"ok": True,
                                  "draining": service.draining})
        return _http_response(200, "OK", payload.encode("utf-8"))
    if path == "/metrics" and method == "GET":
        with service.default_tenant.lock:
            text = service.metrics.exposition()
        return _http_response(200, "OK", text.encode("utf-8"),
                              content_type="text/plain; version=0.0.4")
    if path == "/task" and method == "POST":
        line = body.decode("utf-8", errors="replace")
        control = parse_control(line)
        if control is not None:
            op = control.get("op")
            if op in ("hello", "batch"):
                payload = canonical_json({
                    "ok": False, "op": op,
                    "error": f"{op} op needs a persistent connection; "
                             f"use the line protocol or /ws"})
                return _http_response(400, "Bad Request",
                                      payload.encode("utf-8"))
            response = service.control_record(control)
        else:
            eval_line, rid = strip_rid(line)
            tenant = service.tenants.anonymous()
            tenant.connections += 1
            try:
                response = await service.submit(tenant, eval_line, rid=rid)
            finally:
                tenant.connections -= 1
                service.tenants.discard(tenant)
        status, reason = _status_for(response)
        return _http_response(status, reason, response.encode("utf-8"))
    payload = canonical_json({"ok": False,
                              "error": f"no route for {method} {path}"})
    return _http_response(404, "Not Found", payload.encode("utf-8"))


async def _serve_websocket(service: AsyncSolverService,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           headers: Dict[str, str]) -> None:
    key = headers.get("sec-websocket-key")
    if not key:
        writer.write(_http_response(
            400, "Bad Request",
            b'{"error":"missing Sec-WebSocket-Key","ok":false}'))
        await writer.drain()
        return
    writer.write((
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n\r\n"
    ).encode("ascii"))
    await writer.drain()

    # A WebSocket connection reuses the TCP connection machinery in
    # multiplex mode, with the line writer swapped for a frame writer.
    from repro.service.async_daemon import _Connection

    connection = _Connection(service, writer)
    connection.multiplex = True
    write_lock = connection._write_lock

    async def _write_frame_line(line: str) -> None:
        async with write_lock:
            writer.write(encode_frame(line.encode("utf-8")))
            try:
                await writer.drain()
            except ConnectionError:
                pass

    connection._write_line = _write_frame_line  # type: ignore[method-assign]
    try:
        while True:
            try:
                opcode, payload = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError,
                    ValueError):
                break
            if opcode == _OP_CLOSE:
                async with write_lock:
                    writer.write(encode_frame(payload, opcode=_OP_CLOSE))
                    try:
                        await writer.drain()
                    except ConnectionError:
                        pass
                break
            if opcode == _OP_PING:
                async with write_lock:
                    writer.write(encode_frame(payload, opcode=_OP_PONG))
                    await writer.drain()
                continue
            if opcode != _OP_TEXT:
                continue
            line = payload.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            if not connection.handle_line(line):
                break
    finally:
        await connection.close()
