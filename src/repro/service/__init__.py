"""The resident request service (``repro serve``).

Turns the one-shot CLI into a long-running daemon: one
:class:`~repro.session.SolverSession` stays warm across an entire
request stream, so compiled targets, canonical-component memo entries
and the persistent store amortize over thousands of requests instead
of being rebuilt per process invocation.  See DESIGN.md §10.

Two front ends share the protocol:

* the threaded daemon (:mod:`repro.service.daemon`) — one resident
  session, thread-per-connection TCP, the original deployment;
* the async daemon (:mod:`repro.service.async_daemon`) — asyncio
  multiplexing, per-tenant sessions with quotas and priorities,
  admission-control backpressure, and an HTTP/WebSocket facade.
  See DESIGN.md §16.
"""

from repro.service.async_daemon import (
    AsyncDaemonHandle,
    AsyncSolverService,
    serve_async_stdio,
    serve_async_tcp,
)
from repro.service.client import DaemonClient
from repro.service.daemon import (
    ServiceStats,
    SolverService,
    serve_socket,
    serve_stdio,
)
from repro.service.loadgen import LoadReport, run_load
from repro.service.tenant import (
    LockedStore,
    Tenant,
    TenantQuota,
    TenantRegistry,
)

__all__ = [
    "AsyncDaemonHandle",
    "AsyncSolverService",
    "DaemonClient",
    "LoadReport",
    "LockedStore",
    "ServiceStats",
    "SolverService",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "run_load",
    "serve_async_stdio",
    "serve_async_tcp",
    "serve_socket",
    "serve_stdio",
]
