"""The resident request service (``repro serve``).

Turns the one-shot CLI into a long-running daemon: one
:class:`~repro.session.SolverSession` stays warm across an entire
request stream, so compiled targets, canonical-component memo entries
and the persistent store amortize over thousands of requests instead
of being rebuilt per process invocation.  See DESIGN.md §10.
"""

from repro.service.client import DaemonClient
from repro.service.daemon import (
    ServiceStats,
    SolverService,
    serve_socket,
    serve_stdio,
)

__all__ = [
    "DaemonClient",
    "ServiceStats",
    "SolverService",
    "serve_socket",
    "serve_stdio",
]
