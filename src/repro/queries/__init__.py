"""Query model: CQs, boolean UCQs, path queries, parsing, evaluation."""

from repro.queries.cq import (
    Atom,
    ConjunctiveQuery,
    boolean_cq,
    cq_from_structure,
)
from repro.queries.ucq import UnionOfBooleanCQs, as_ucq
from repro.queries.path import EPSILON, PathQuery, signed_word
from repro.queries.parser import (
    parse_boolean_cq,
    parse_cq,
    parse_path,
    parse_ucq,
)
from repro.queries.printing import format_cq, format_path, format_ucq
from repro.queries.evaluation import (
    answers_agree,
    evaluate_boolean,
    evaluate_cq,
    evaluate_path_boolean,
    evaluate_path_query,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "boolean_cq",
    "cq_from_structure",
    "UnionOfBooleanCQs",
    "as_ucq",
    "EPSILON",
    "PathQuery",
    "signed_word",
    "parse_boolean_cq",
    "parse_cq",
    "parse_path",
    "parse_ucq",
    "format_cq",
    "format_path",
    "format_ucq",
    "answers_agree",
    "evaluate_boolean",
    "evaluate_cq",
    "evaluate_path_boolean",
    "evaluate_path_query",
]
