"""Bag-semantics query evaluation.

Section 2.1 of the paper: the result ``Φ(D)`` of a CQ is the multiset
whose multiplicity at ``ā`` is the number of homomorphisms from the
frozen body of ``Φ`` to ``D`` sending the frozen free tuple to ``ā``.
For boolean queries that is just the total homomorphism count, and for
a boolean UCQ the disjuncts' counts are summed.

Path queries get a dedicated dynamic-programming evaluator (walk
counting, Fact 18: ``w(D)[a_i, a_j] = M_w(i, j)``) so view answers on
large-ish graphs don't pay general backtracking costs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.multiset import Multiset
from repro.structures.structure import Structure
from repro.hom.count import count_homs
from repro.hom.search import iter_homomorphisms

Constant = Hashable


def evaluate_boolean(query: ConjunctiveQuery | UnionOfBooleanCQs,
                     database: Structure) -> int:
    """``q(D)`` for a boolean CQ or UCQ, as a natural number.

    (The paper writes ``q(D)`` for ``q(D)[⟨⟩]``; we follow suit.)
    """
    if isinstance(query, UnionOfBooleanCQs):
        return sum(evaluate_boolean(d, database) for d in query.disjuncts)
    if not query.is_boolean():
        raise QueryError(f"expected a boolean query, got free variables {query.free}")
    return count_homs(query.frozen_body(), database)


def evaluate_cq(query: ConjunctiveQuery, database: Structure) -> Multiset:
    """``Φ(D)`` as a multiset of answer tuples.

    >>> from repro.queries.parser import parse_cq
    >>> from repro.structures.generators import path_structure
    >>> q = parse_cq("x, y | R(x, y)")
    >>> answers = evaluate_cq(q, path_structure(['R', 'R']))
    >>> answers.total()
    2
    """
    if query.is_boolean():
        count = evaluate_boolean(query, database)
        return Multiset({(): count}) if count else Multiset()
    body = query.frozen_body()
    frozen_free = query.frozen_free_tuple()
    counts: Dict[Tuple, int] = {}
    for hom in iter_homomorphisms(body, database):
        answer = tuple(hom[c] for c in frozen_free)
        counts[answer] = counts.get(answer, 0) + 1
    return Multiset(counts)


def evaluate_path_query(path: PathQuery, database: Structure) -> Multiset:
    """``Λ(D)`` for a path query, by walk-counting DP.

    The empty word ε evaluates to ``{(a, a) : a ∈ dom(D)}`` with
    multiplicity 1 (the identity, matching ``M_ε = I``).
    """
    counts: Dict[Tuple[Constant, Constant], int] = {
        (a, a): 1 for a in database.domain()
    }
    for letter in path.letters:
        edges = database.tuples(letter)
        successors: Dict[Constant, list] = {}
        for source, target in edges:
            successors.setdefault(source, []).append(target)
        next_counts: Dict[Tuple[Constant, Constant], int] = {}
        for (start, current), multiplicity in counts.items():
            for target in successors.get(current, ()):
                key = (start, target)
                next_counts[key] = next_counts.get(key, 0) + multiplicity
        counts = next_counts
    return Multiset(counts)


def evaluate_path_boolean(path: PathQuery, database: Structure) -> int:
    """Total number of walks spelling the word (the boolean closure)."""
    return evaluate_path_query(path, database).total()


def answers_agree(query, left: Structure, right: Structure) -> bool:
    """``q(D) = q(D')`` under bag semantics — the building block of the
    ♠ determinacy condition."""
    if isinstance(query, PathQuery):
        return evaluate_path_query(query, left) == evaluate_path_query(query, right)
    if isinstance(query, UnionOfBooleanCQs):
        return evaluate_boolean(query, left) == evaluate_boolean(query, right)
    if isinstance(query, ConjunctiveQuery):
        if query.is_boolean():
            return evaluate_boolean(query, left) == evaluate_boolean(query, right)
        return evaluate_cq(query, left) == evaluate_cq(query, right)
    raise QueryError(f"cannot evaluate {query!r}")
