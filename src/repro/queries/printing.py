"""Canonical textual rendering of queries — inverse of the parser.

``format_cq(parse_cq(text))`` is stable and ``parse_cq(format_cq(q))``
returns a query equal to ``q`` (up to the set-of-atoms normalization
the constructor already applies); the round trip is property-tested in
``tests/test_printing.py``.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs


def format_atom(atom) -> str:
    return f"{atom.relation}({', '.join(atom.variables)})"


def format_cq(query: ConjunctiveQuery) -> str:
    """Parser-compatible text for a CQ.

    Raises for queries with isolated extra variables: the grammar has
    no way to declare a variable that occurs in no atom.
    """
    body_variables = {v for atom in query.atoms for v in atom.variables}
    stray = set(query.extra_variables) - body_variables
    stray -= set(query.free)  # free-but-unused vars round-trip fine
    if stray:
        raise QueryError(
            f"variables {sorted(stray)} occur in no atom; the textual "
            f"syntax cannot express them"
        )
    if not query.atoms:
        raise QueryError(
            "the empty conjunction has no textual form in this grammar"
        )
    atoms = ", ".join(format_atom(a) for a in sorted(query.atoms, key=str))
    if query.free:
        return f"{', '.join(query.free)} | {atoms}"
    return atoms


def format_ucq(query: UnionOfBooleanCQs) -> str:
    return " or ".join(format_cq(d) for d in query.disjuncts)


def format_path(query: PathQuery) -> str:
    if query.is_empty():
        return "ε"
    return ".".join(query.letters)
