"""Path queries (paper Section 3).

Over a binary schema Σ, a path query is a CQ of the shape::

    Λ(x, y) = ∃x1..x_{n-1}  R1(x, x1), R2(x1, x2), ..., Rn(x_{n-1}, y)

and the paper identifies path queries with *words* over Σ: the query
above is the word ``R1 R2 ... Rn``.  The empty word ε is identified
with the (non-path) query ``x = y``.

:class:`PathQuery` is a thin immutable word wrapper with the prefix
machinery Definition 9 needs, plus conversion to a two-free-variable
:class:`~repro.queries.cq.ConjunctiveQuery`.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.errors import QueryError
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure


class PathQuery:
    """A path query, i.e. a word over binary relation names.

    >>> q = PathQuery(('A', 'B', 'C'))
    >>> len(q), q.letters
    (3, ('A', 'B', 'C'))
    >>> [p.letters for p in q.prefixes()]
    [(), ('A',), ('A', 'B'), ('A', 'B', 'C')]
    """

    __slots__ = ("letters",)

    def __init__(self, letters: Sequence[str] = ()):
        for letter in letters:
            if not isinstance(letter, str) or not letter:
                raise QueryError(f"path letters must be non-empty strings, got {letter!r}")
        self.letters = tuple(letters)

    # ------------------------------------------------------------------
    # Word structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.letters)

    def __bool__(self) -> bool:
        """The empty word is falsy (it is ε, not a real path query)."""
        return bool(self.letters)

    def __iter__(self) -> Iterator[str]:
        return iter(self.letters)

    def __getitem__(self, index):
        result = self.letters[index]
        if isinstance(index, slice):
            return PathQuery(result)
        return result

    def __add__(self, other: "PathQuery") -> "PathQuery":
        """Concatenation of words."""
        if not isinstance(other, PathQuery):
            return NotImplemented
        return PathQuery(self.letters + other.letters)

    def is_empty(self) -> bool:
        return not self.letters

    def prefixes(self) -> List["PathQuery"]:
        """All prefixes, ε first, the full word last (Definition 9)."""
        return [PathQuery(self.letters[:i]) for i in range(len(self.letters) + 1)]

    def is_prefix_of(self, other: "PathQuery") -> bool:
        return self.letters == other.letters[: len(self.letters)]

    def strip_prefix(self, prefix: "PathQuery") -> "PathQuery":
        if not prefix.is_prefix_of(self):
            raise QueryError(f"{prefix} is not a prefix of {self}")
        return PathQuery(self.letters[len(prefix):])

    def strip_suffix(self, suffix: "PathQuery") -> "PathQuery":
        if len(suffix) > len(self) or (
            suffix.letters != self.letters[len(self) - len(suffix):]
        ):
            raise QueryError(f"{suffix} is not a suffix of {self}")
        return PathQuery(self.letters[: len(self) - len(suffix)])

    def alphabet(self) -> frozenset:
        return frozenset(self.letters)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def schema(self) -> Schema:
        return Schema({letter: 2 for letter in self.letters})

    def to_cq(self, start: str = "x", end: str = "y") -> ConjunctiveQuery:
        """The two-free-variable CQ this word denotes.

        Raises for ε: ``x = y`` is not expressible as a (equality-free)
        CQ, matching the paper's footnote 12.
        """
        if not self.letters:
            raise QueryError("the empty word denotes x = y, which is not a CQ")
        variables = [start] + [f"_p{i}" for i in range(1, len(self.letters))] + [end]
        atoms = [
            Atom(letter, (variables[i], variables[i + 1]))
            for i, letter in enumerate(self.letters)
        ]
        return ConjunctiveQuery(atoms, free=(start, end))

    def frozen_path(self, tag=0) -> Structure:
        """The frozen body as a simple path structure with constants
        ``(tag, 0), ..., (tag, n)``."""
        facts = [
            Fact(letter, ((tag, i), (tag, i + 1)))
            for i, letter in enumerate(self.letters)
        ]
        domain = [(tag, i) for i in range(len(self.letters) + 1)]
        return Structure(facts, domain=domain)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathQuery):
            return NotImplemented
        return self.letters == other.letters

    def __hash__(self) -> int:
        return hash(("pathquery", self.letters))

    def __repr__(self) -> str:
        if not self.letters:
            return "PathQuery(ε)"
        return f"PathQuery({'.'.join(self.letters)})"


EPSILON = PathQuery(())


def signed_word(path: PathQuery, sign: int = 1) -> Tuple[Tuple[str, int], ...]:
    """The word as signed letters; ``sign=-1`` reverses and inverts
    (paper footnote 18: ``w^{-1}`` is ``w`` reversed with every letter
    inverted)."""
    if sign == 1:
        return tuple((letter, 1) for letter in path.letters)
    if sign == -1:
        return tuple((letter, -1) for letter in reversed(path.letters))
    raise QueryError(f"sign must be +1 or -1, got {sign}")
