"""Unions of boolean conjunctive queries.

A boolean UCQ ``Ψ`` (paper Section 2.1) is a disjunction of boolean CQs
and its *bag-semantics* answer on ``D`` is the natural number
``Ψ(D) = Σ_{Φ∈Ψ} Φ(D)`` — the disjuncts' counts are *summed*, not
maxed.  This additive reading is what makes the "p1 ∨ p2 trick" of the
Theorem 2 reduction work.

Disjuncts are kept as a list (a disjunct may appear several times,
which matters: ``Φ ∨ Φ`` answers ``2·Φ(D)``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.structures.schema import Schema


class UnionOfBooleanCQs:
    """A finite disjunction of boolean CQs with multiplicity.

    >>> from repro.queries.cq import boolean_cq
    >>> p = boolean_cq([('P', ('x',))])
    >>> r = boolean_cq([('R', ('x',))])
    >>> psi = UnionOfBooleanCQs([p, r])
    >>> len(psi.disjuncts)
    2
    """

    __slots__ = ("disjuncts", "_schema")

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery],
                 schema: Optional[Schema] = None):
        normalized: List[ConjunctiveQuery] = []
        for disjunct in disjuncts:
            if not isinstance(disjunct, ConjunctiveQuery):
                raise QueryError(f"UCQ disjunct must be a CQ, got {disjunct!r}")
            if not disjunct.is_boolean():
                raise QueryError(
                    f"UCQ disjuncts must be boolean, got arity {disjunct.arity}"
                )
            normalized.append(disjunct)
        if not normalized:
            raise QueryError("a UCQ needs at least one disjunct")
        self.disjuncts = tuple(normalized)
        self._schema = schema

    def schema(self) -> Schema:
        if self._schema is not None:
            return self._schema
        merged = Schema({})
        for disjunct in self.disjuncts:
            merged = merged.union(disjunct.schema())
        return merged

    def is_single_cq(self) -> bool:
        return len(self.disjuncts) == 1

    def union(self, other: "UnionOfBooleanCQs") -> "UnionOfBooleanCQs":
        return UnionOfBooleanCQs(self.disjuncts + other.disjuncts)

    def repeated(self, times: int) -> "UnionOfBooleanCQs":
        """``Ψ ∨ Ψ ∨ ...`` (``times`` copies) — multiplies the answer."""
        if times < 1:
            raise QueryError(f"need at least one copy, got {times}")
        return UnionOfBooleanCQs(self.disjuncts * times)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfBooleanCQs):
            return NotImplemented
        return sorted(map(repr, self.disjuncts)) == sorted(map(repr, other.disjuncts))

    def __hash__(self) -> int:
        return hash(tuple(sorted(map(repr, self.disjuncts))))

    def __repr__(self) -> str:
        return " | ".join(repr(d) for d in self.disjuncts)


def as_ucq(query: ConjunctiveQuery | UnionOfBooleanCQs) -> UnionOfBooleanCQs:
    """Coerce a boolean CQ into a one-disjunct UCQ."""
    if isinstance(query, UnionOfBooleanCQs):
        return query
    if isinstance(query, ConjunctiveQuery):
        return UnionOfBooleanCQs([query])
    raise QueryError(f"cannot interpret {query!r} as a UCQ")
