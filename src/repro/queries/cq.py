"""Conjunctive queries.

A conjunctive query ``Φ = ∃ȳ φ(x̄, ȳ)`` (paper Section 2.1) is a
conjunction of atoms over free variables ``x̄`` and existential
variables ``ȳ``.  Its *frozen body* is the structure obtained by
freezing every variable into a fresh constant; a CQ with no free
variables is *boolean* and is identified with its frozen body
throughout the paper (and throughout this library).

Design notes
------------
* Variables are plain strings.  Frozen constants are ``("var", name)``
  pairs so they can never collide with user data constants.
* A variable may legally appear in no atom; it then survives as an
  isolated element of the frozen body's domain and contributes a factor
  ``|dom(D)|`` to every answer count, matching the homomorphism
  definition of the semantics.
* Queries are immutable, hashable, and compare *syntactically* (same
  atoms, same free tuple).  Semantic comparisons (equivalence,
  isomorphism of frozen bodies) live in :mod:`repro.hom.containment`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.structures.schema import Schema
from repro.structures.structure import Fact, Structure

Variable = str
FROZEN_TAG = "var"


class Atom:
    """A query atom ``R(x1, ..., xk)`` over variables."""

    __slots__ = ("relation", "variables")

    def __init__(self, relation: str, variables: Sequence[Variable] = ()):
        if not relation or not isinstance(relation, str):
            raise QueryError(f"atom relation must be a non-empty string, got {relation!r}")
        for variable in variables:
            if not isinstance(variable, str) or not variable:
                raise QueryError(f"variables must be non-empty strings, got {variable!r}")
        self.relation = relation
        self.variables = tuple(variables)

    @property
    def arity(self) -> int:
        return len(self.variables)

    def to_fact(self) -> Fact:
        """Freeze the atom: each variable becomes the constant ('var', name)."""
        return Fact(self.relation, tuple((FROZEN_TAG, v) for v in self.variables))

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        return Atom(self.relation, tuple(mapping.get(v, v) for v in self.variables))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.relation == other.relation and self.variables == other.variables

    def __hash__(self) -> int:
        return hash((self.relation, self.variables))

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.variables!r})"

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """An immutable conjunctive query.

    Parameters
    ----------
    atoms:
        The conjunction body (duplicate atoms collapse — the body is a
        set of atoms, as in the paper where boolean CQs *are* their
        frozen bodies, which are fact sets).
    free:
        The tuple of free (answer) variables.  Empty = boolean.
    extra_variables:
        Existential variables that appear in no atom (rare but legal).
    schema:
        Optional schema to validate arities against.

    >>> q = ConjunctiveQuery([Atom('R', ('x', 'y'))], free=('x',))
    >>> q.arity, q.is_boolean()
    (1, False)
    """

    __slots__ = ("atoms", "free", "extra_variables", "_schema", "_frozen")

    def __init__(
        self,
        atoms: Iterable[Atom | Tuple[str, Sequence[Variable]]],
        free: Sequence[Variable] = (),
        extra_variables: Iterable[Variable] = (),
        schema: Optional[Schema] = None,
    ):
        normalized: List[Atom] = []
        for atom in atoms:
            if isinstance(atom, Atom):
                normalized.append(atom)
            else:
                relation, variables = atom
                normalized.append(Atom(relation, variables))
        self.atoms = frozenset(normalized)

        seen_arities: Dict[str, int] = {}
        for atom in self.atoms:
            previous = seen_arities.get(atom.relation)
            if previous is not None and previous != atom.arity:
                raise QueryError(
                    f"relation {atom.relation!r} used with arities {previous} and {atom.arity}"
                )
            seen_arities[atom.relation] = atom.arity
            if schema is not None:
                if atom.relation not in schema:
                    raise QueryError(f"atom relation {atom.relation!r} not in schema")
                if schema.arity(atom.relation) != atom.arity:
                    raise QueryError(
                        f"atom {atom} contradicts schema arity "
                        f"{schema.arity(atom.relation)}"
                    )

        body_variables = {v for atom in self.atoms for v in atom.variables}
        self.free = tuple(free)
        duplicates = len(self.free) != len(set(self.free))
        if duplicates:
            raise QueryError(f"free variables must be distinct, got {self.free}")
        missing_free = [v for v in self.free if v not in body_variables]
        self.extra_variables = frozenset(extra_variables) | frozenset(missing_free)
        self._schema = schema
        self._frozen: Optional[Structure] = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.free)

    def is_boolean(self) -> bool:
        return not self.free

    def variables(self) -> FrozenSet[Variable]:
        """All variables: body plus extra isolated ones."""
        body = {v for atom in self.atoms for v in atom.variables}
        return frozenset(body) | self.extra_variables

    def existential_variables(self) -> FrozenSet[Variable]:
        return self.variables() - set(self.free)

    def schema(self) -> Schema:
        """Declared schema, or the schema inferred from the atoms."""
        if self._schema is not None:
            return self._schema
        return Schema({atom.relation: atom.arity for atom in self.atoms})

    def has_nullary_atom(self) -> bool:
        return any(atom.arity == 0 for atom in self.atoms)

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------
    def frozen_body(self) -> Structure:
        """The frozen body (paper Sec 2.1): variables become constants.

        Isolated variables survive as isolated domain elements.  The
        structure is built once and cached (queries are immutable); it
        is the key under which every downstream cache — hom counts,
        components, invariants — recognizes this query.
        """
        frozen = self._frozen
        if frozen is None:
            facts = [atom.to_fact() for atom in self.atoms]
            domain = [(FROZEN_TAG, v) for v in self.variables()]
            frozen = Structure(facts, schema=self._schema, domain=domain)
            self._frozen = frozen
        return frozen

    def frozen_free_tuple(self) -> Tuple:
        """The frozen constants of the free variables, in order."""
        return tuple((FROZEN_TAG, v) for v in self.free)

    # ------------------------------------------------------------------
    # Rewriting helpers
    # ------------------------------------------------------------------
    def rename_variables(self, mapping: Dict[Variable, Variable]) -> "ConjunctiveQuery":
        image = [mapping.get(v, v) for v in self.variables()]
        if len(set(image)) != len(image):
            raise QueryError("variable renaming must be injective")
        return ConjunctiveQuery(
            [atom.rename(mapping) for atom in self.atoms],
            free=tuple(mapping.get(v, v) for v in self.free),
            extra_variables=[mapping.get(v, v) for v in self.extra_variables],
            schema=self._schema,
        )

    def boolean_closure(self) -> "ConjunctiveQuery":
        """Existentially close all free variables."""
        return ConjunctiveQuery(self.atoms, free=(),
                                extra_variables=self.extra_variables,
                                schema=self._schema)

    def conjoin(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """Conjunction of two queries (variables shared by name)."""
        return ConjunctiveQuery(
            list(self.atoms) + list(other.atoms),
            free=self.free + tuple(v for v in other.free if v not in self.free),
            extra_variables=self.extra_variables | other.extra_variables,
            schema=self._schema,
        )

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (self.atoms == other.atoms and self.free == other.free
                and self.extra_variables == other.extra_variables)

    def __hash__(self) -> int:
        return hash((self.atoms, self.free, self.extra_variables))

    def __repr__(self) -> str:
        atoms = ", ".join(sorted(str(a) for a in self.atoms))
        if self.free:
            return f"CQ({', '.join(self.free)} | {atoms})"
        return f"BooleanCQ({atoms})"

    def __str__(self) -> str:
        return repr(self)


def boolean_cq(atoms: Iterable[Atom | Tuple[str, Sequence[Variable]]],
               schema: Optional[Schema] = None) -> ConjunctiveQuery:
    """Shorthand for a boolean conjunctive query."""
    return ConjunctiveQuery(atoms, free=(), schema=schema)


def cq_from_structure(structure: Structure) -> ConjunctiveQuery:
    """The canonical boolean CQ of a structure (inverse of freezing).

    Each constant becomes a variable named after its ``repr``; the
    resulting query's frozen body is isomorphic to the input.
    """
    naming = {c: f"v{i}" for i, c in enumerate(sorted(structure.domain(), key=repr))}
    atoms = [Atom(f.relation, tuple(naming[t] for t in f.terms)) for f in structure.facts()]
    extra = [naming[c] for c in structure.isolated_elements()]
    return ConjunctiveQuery(atoms, free=(), extra_variables=extra,
                            schema=structure.schema)
