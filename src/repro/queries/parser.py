"""A small textual syntax for queries.

Grammar (whitespace-insensitive)::

    cq       :=  [ freevars '|' ] atoms
    freevars :=  var [',' var]*           -- e.g.  "x, y |"
    atoms    :=  atom [',' atom]*
    atom     :=  NAME '(' [var [',' var]*] ')'
    ucq      :=  cq ['|' cq]*  when every branch is boolean  -- see note
    path     :=  NAME ['.' NAME]*         -- e.g.  "A.B.C"

Because '|' is both the free-variable separator and the UCQ
disjunction, UCQs use ``' or '`` (the keyword, surrounded by spaces) or
``'∨'`` as the disjunction separator::

    parse_ucq("P(x) or R(x)")

Examples
--------
>>> q = parse_cq("R(x,y), S(y,z)")
>>> q.is_boolean()
True
>>> parse_cq("x | P(u,x), R(x,y)").free
('x',)
>>> parse_path("A.B.C").letters
('A', 'B', 'C')
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.errors import ParseError
from repro.queries.cq import Atom, ConjunctiveQuery
from repro.queries.path import PathQuery
from repro.queries.ucq import UnionOfBooleanCQs
from repro.structures.schema import Schema

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9']*)\s*\(([^()]*)\)\s*")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9']*$")


def parse_cq(text: str, schema: Optional[Schema] = None) -> ConjunctiveQuery:
    """Parse a conjunctive query.

    A leading ``vars |`` segment declares the free variables; without
    it the query is boolean.
    """
    if not isinstance(text, str) or not text.strip():
        raise ParseError("empty query text")
    free: tuple = ()
    body = text
    if "|" in text:
        head, _, tail = text.partition("|")
        free = _parse_varlist(head)
        body = tail
    atoms = _parse_atoms(body)
    try:
        return ConjunctiveQuery(atoms, free=free, schema=schema)
    except Exception as exc:  # re-raise with parse context
        raise ParseError(f"invalid query {text!r}: {exc}") from exc


def parse_boolean_cq(text: str, schema: Optional[Schema] = None) -> ConjunctiveQuery:
    """Parse and insist the result is boolean."""
    query = parse_cq(text, schema=schema)
    if not query.is_boolean():
        raise ParseError(f"expected a boolean CQ, got free variables {query.free}")
    return query


def parse_ucq(text: str, schema: Optional[Schema] = None) -> UnionOfBooleanCQs:
    """Parse a union of boolean CQs, disjuncts separated by ``or``/``∨``."""
    if not isinstance(text, str) or not text.strip():
        raise ParseError("empty UCQ text")
    pieces = re.split(r"\s+or\s+|∨", text)
    disjuncts = [parse_boolean_cq(piece, schema=schema) for piece in pieces]
    return UnionOfBooleanCQs(disjuncts, schema=schema)


def parse_path(text: str) -> PathQuery:
    """Parse a path query word, letters separated by dots: ``"A.B.C"``.

    The empty string (or ``"ε"``) parses to the empty word.
    """
    if text is None:
        raise ParseError("path text must be a string")
    stripped = text.strip()
    if stripped in ("", "ε", "eps", "epsilon"):
        return PathQuery(())
    letters = [piece.strip() for piece in stripped.split(".")]
    for letter in letters:
        if not _NAME_RE.match(letter):
            raise ParseError(f"bad path letter {letter!r} in {text!r}")
    return PathQuery(letters)


def _parse_varlist(text: str) -> tuple:
    names = [piece.strip() for piece in text.split(",")]
    for name in names:
        if not _NAME_RE.match(name):
            raise ParseError(f"bad variable name {name!r} in {text!r}")
    return tuple(names)


def _parse_atoms(text: str) -> List[Atom]:
    atoms: List[Atom] = []
    position = 0
    stripped = text.strip()
    if not stripped:
        return atoms
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if match is None:
            raise ParseError(f"cannot parse atom at ...{text[position:position+30]!r}")
        relation, arguments = match.group(1), match.group(2)
        variables = _parse_varlist(arguments) if arguments.strip() else ()
        atoms.append(Atom(relation, variables))
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise ParseError(
                    f"expected ',' between atoms at ...{text[position:position+30]!r}"
                )
            position += 1
    if not atoms:
        raise ParseError(f"no atoms found in {text!r}")
    return atoms
