"""Set-semantics determinacy for boolean CQs.

Section 4 of the paper remarks that, under set semantics, determinacy
is "trivially decidable for boolean UCQs".  This module makes the
boolean-CQ case executable, which lets the library demonstrate the
paper's strictness corollary (→bag is strictly stronger than →set for
boolean CQs) with both verdicts computed rather than asserted.

Characterization (folklore; a proof is in this docstring because the
paper leaves it as an exercise).  Let ``V_q = {v ∈ V0 : q ⊆set v}``
and let ``A`` be the disjoint union of the frozen bodies of ``V_q``.

    **V0 →set q   iff   ∧V_q ⊆set q,  i.e.  hom(q, A) ≠ ∅.**

*If:* take ``D, D'`` with equal boolean view profiles.  When some
``v ∈ V_q`` is false in them, ``q`` is false in both (``q ⊆set v``).
When all of ``V_q`` hold, the body of each ``v`` maps in, so ``A``
maps in, so ``q`` holds in both.

*Only if:* suppose ``hom(q, A) = ∅``.  Set ``D = A`` and
``D' = A + (q × q)``.  Every ``v ∈ V_q`` holds in both (its body sits
inside ``A``).  For ``w ∉ V_q``: every connected component of ``A``
maps into ``q`` (it is a component of some ``v`` with ``hom(v, q·) ≠
∅``... precisely: ``v ∈ V_q`` means ``hom(v, frozen q) ≠ ∅``), and
``q × q`` maps into ``q``, so if every component of ``w`` mapped into
``D'`` then every component would map into ``frozen(q)`` — giving
``hom(w, frozen q) ≠ ∅`` and ``w ∈ V_q``, contradiction; hence ``w``
has the same boolean value on ``D`` and ``D'``.  But ``q`` is false on
``D`` (assumption) and true on ``D'`` (via ``q × q``).  So ``V0`` does
not set-determine ``q``. ∎
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import DecisionError
from repro.hom.containment import views_containing
from repro.queries.cq import ConjunctiveQuery
from repro.core.basis import validate_for_component_basis
from repro.session import SolverSession, resolve_session
from repro.structures.operations import product, sum_structures
from repro.structures.structure import Structure


@dataclass
class SetDeterminacyResult:
    """Verdict for boolean set-semantics determinacy, with witness."""

    query: ConjunctiveQuery
    views: Tuple[ConjunctiveQuery, ...]
    relevant_views: Tuple[ConjunctiveQuery, ...]
    determined: bool
    _conjunction_body: Structure

    def counterexample(self) -> Tuple[Structure, Structure]:
        """``(A, A + q×q)``: equal boolean view profiles, different
        boolean query answers (see module docstring)."""
        if self.determined:
            raise DecisionError("the views set-determine the query")
        frozen_query = self.query.frozen_body()
        boosted = sum_structures(
            [self._conjunction_body, product(frozen_query, frozen_query)]
        )
        return self._conjunction_body, boosted


def decide_set_determinacy_boolean(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
    session: Optional[SolverSession] = None,
) -> SetDeterminacyResult:
    """Decide ``V0 →set q`` for boolean CQs.

    Containment probes and the final homomorphism test run under
    ``session`` (default: the process-wide one), so a request stream
    mixing set- and bag-semantics decisions shares one memo.

    >>> from repro.queries.parser import parse_boolean_cq
    >>> q = parse_boolean_cq("R(x,y), R(y,z)")
    >>> v = parse_boolean_cq("R(x,y)")
    >>> decide_set_determinacy_boolean([q], q).determined
    True
    >>> decide_set_determinacy_boolean([v], q).determined
    False
    """
    session = resolve_session(session)
    validate_for_component_basis(query)
    for view in views:
        validate_for_component_basis(view)
    relevant = tuple(views_containing(query, views, session=session))
    conjunction_body = sum_structures([v.frozen_body() for v in relevant])
    determined = session.exists(query.frozen_body(), conjunction_body)
    return SetDeterminacyResult(
        query=query,
        views=tuple(views),
        relevant_views=relevant,
        determined=determined,
        _conjunction_body=conjunction_body,
    )
