"""Path-query determinacy (Theorem 1).

Definition 9 attaches to ``(q, V)`` an undirected graph ``G_{q,V}``
whose nodes are the prefixes of ``q``, with an edge ``w — w·v`` for
each view ``v``.  Fact 10 (set semantics, [2, 13]) and Lemma 11 (bag
semantics, this paper) both say: **V determines q iff ε reaches q** in
that graph.  So one reachability check decides both semantics — that
coincidence *is* Theorem 1.

The decider returns a result object carrying, on success, the path
certificate (and the induced q-walk, see :mod:`repro.core.qwalk`;
feed it to :mod:`repro.core.pathrewriting` for an executable
rewriting), and on failure the Appendix-B counterexample pair::

    D  = q + q                       (two disjoint frozen copies of q)
    D' = the "twisted" variant:      R([w,i], [wR, j]) with i = j iff
                                     w ~ wR (both reachable or both not)

which answers every view identically on ``D`` and ``D'`` but flips the
query.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DecisionError, QueryError
from repro.queries.path import PathQuery
from repro.structures.structure import Fact, Structure
from repro.core.qwalk import SignedWord, is_q_walk, make_signed_word

PrefixNode = Tuple[str, ...]


@dataclass(frozen=True)
class CertificateStep:
    """One edge of the ε→q path: from ``source`` via ``view`` with
    ``sign=+1`` (appending) or ``sign=-1`` (peeling)."""

    source: PathQuery
    target: PathQuery
    view: PathQuery
    sign: int


class PrefixGraph:
    """The graph ``G_{q,V}`` of Definition 9."""

    def __init__(self, views: Sequence[PathQuery], query: PathQuery):
        for view in views:
            if len(view) == 0:
                raise QueryError("views must be non-empty path queries")
        self.query = query
        self.views = tuple(views)
        self.nodes: List[PathQuery] = query.prefixes()
        node_set = {p.letters for p in self.nodes}
        self.adjacency: Dict[PrefixNode, List[CertificateStep]] = {
            p.letters: [] for p in self.nodes
        }
        for prefix in self.nodes:
            for view in self.views:
                extended = prefix + view
                if extended.letters in node_set:
                    self.adjacency[prefix.letters].append(
                        CertificateStep(prefix, extended, view, +1)
                    )
                    self.adjacency[extended.letters].append(
                        CertificateStep(extended, prefix, view, -1)
                    )

    def reachable_from_epsilon(self) -> Set[PrefixNode]:
        """BFS closure of ε under the (undirected) edges."""
        seen: Set[PrefixNode] = {()}
        frontier = deque([()])
        while frontier:
            node = frontier.popleft()
            for step in self.adjacency[node]:
                target = step.target.letters
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def to_dot(self) -> str:
        """Graphviz DOT rendering of ``G_{q,V}`` with the ε-reachable
        prefixes highlighted — handy for papers and debugging."""
        reachable = self.reachable_from_epsilon()
        lines = ["graph G_qV {", '  rankdir="LR";']
        for prefix in self.nodes:
            label = "".join(prefix.letters) or "ε"
            shade = ' style="filled" fillcolor="palegreen"' \
                if prefix.letters in reachable else ""
            lines.append(f'  "{label}" [label="{label}"{shade}];')
        seen = set()
        for prefix in self.nodes:
            for step in self.adjacency[prefix.letters]:
                if step.sign != 1:
                    continue
                key = (step.source.letters, step.target.letters,
                       step.view.letters)
                if key in seen:
                    continue
                seen.add(key)
                source = "".join(step.source.letters) or "ε"
                target = "".join(step.target.letters) or "ε"
                view = "".join(step.view.letters)
                lines.append(f'  "{source}" -- "{target}" [label="{view}"];')
        lines.append("}")
        return "\n".join(lines)

    def path_to_query(self) -> Optional[List[CertificateStep]]:
        """A shortest ε→q path as certificate steps, or ``None``."""
        parents: Dict[PrefixNode, Optional[CertificateStep]] = {(): None}
        frontier = deque([()])
        goal = self.query.letters
        while frontier:
            node = frontier.popleft()
            if node == goal:
                break
            for step in self.adjacency[node]:
                target = step.target.letters
                if target not in parents:
                    parents[target] = step
                    frontier.append(target)
        if goal not in parents:
            return None
        steps: List[CertificateStep] = []
        node = goal
        while parents[node] is not None:
            step = parents[node]
            steps.append(step)
            node = step.source.letters
        steps.reverse()
        return steps


@dataclass
class PathDeterminacyResult:
    """Verdict for path-query determinacy — valid for *both* semantics
    (Theorem 1)."""

    query: PathQuery
    views: Tuple[PathQuery, ...]
    certificate: Optional[List[CertificateStep]]
    reachable: Set[PrefixNode]

    @property
    def determined(self) -> bool:
        return self.certificate is not None

    def walk(self) -> SignedWord:
        """The induced q-walk ``(v_{p1})^{ε_1} ...`` (Example 13)."""
        if self.certificate is None:
            raise DecisionError("no walk: the views do not determine the query")
        word = make_signed_word([(s.view, s.sign) for s in self.certificate])
        if not is_q_walk(word, self.query):
            raise DecisionError("internal error: certificate did not induce a q-walk")
        return word

    def counterexample(self) -> Tuple[Structure, Structure]:
        """The Appendix-B pair ``(D, D')`` for the negative case."""
        if self.certificate is not None:
            raise DecisionError("the views determine the query; no counterexample")
        return appendix_b_counterexample(self.views, self.query, self.reachable)

    def explain(self) -> str:
        if self.determined:
            pieces = " -> ".join(
                ["ε"] + ["".join(s.target.letters) or "ε" for s in self.certificate]
            )
            return f"determined; certificate path: {pieces}"
        return (
            "not determined; ε cannot reach q in G_{q,V} "
            f"(reachable prefixes: {sorted(''.join(n) or 'ε' for n in self.reachable)})"
        )


def decide_path_determinacy(
    views: Sequence[PathQuery], query: PathQuery
) -> PathDeterminacyResult:
    """Decide ``V →set q`` ⟺ ``V →bag q`` for path queries.

    >>> from repro.queries.parser import parse_path
    >>> views = [parse_path('A.B.C'), parse_path('B.C'), parse_path('B.C.D')]
    >>> decide_path_determinacy(views, parse_path('A.B.C.D')).determined
    True
    >>> decide_path_determinacy([parse_path('A.B')], parse_path('A')).determined
    False
    """
    if len(query) == 0:
        raise QueryError("the query must be a non-empty path query")
    graph = PrefixGraph(views, query)
    return PathDeterminacyResult(
        query=query,
        views=tuple(views),
        certificate=graph.path_to_query(),
        reachable=graph.reachable_from_epsilon(),
    )


def appendix_b_counterexample(
    views: Sequence[PathQuery],
    query: PathQuery,
    reachable: Optional[Set[PrefixNode]] = None,
) -> Tuple[Structure, Structure]:
    """The Appendix-B construction.

    ``D`` is ``q + q`` on domain ``{[w, j]}`` (``w`` prefix, ``j`` in
    {0, 1}); ``D'`` keeps an edge inside copy ``j`` iff its endpoints
    are ~-equivalent (both reachable from ε or both not), and crosses
    copies otherwise.
    """
    if reachable is None:
        reachable = PrefixGraph(views, query).reachable_from_epsilon()
    prefixes = query.prefixes()
    domain = [(p.letters, j) for p in prefixes for j in (0, 1)]

    def similar(w: PrefixNode, u: PrefixNode) -> bool:
        return (w in reachable) == (u in reachable)

    plain_facts: List[Fact] = []
    twisted_facts: List[Fact] = []
    for index, letter in enumerate(query.letters):
        shorter = query.letters[:index]
        longer = query.letters[: index + 1]
        for j in (0, 1):
            plain_facts.append(Fact(letter, ((shorter, j), (longer, j))))
        if similar(shorter, longer):
            for j in (0, 1):
                twisted_facts.append(Fact(letter, ((shorter, j), (longer, j))))
        else:
            for j in (0, 1):
                twisted_facts.append(Fact(letter, ((shorter, j), (longer, 1 - j))))

    left = Structure(plain_facts, domain=domain)
    right = Structure(twisted_facts, domain=domain)
    return left, right
