"""q-walks and their reductions (Definitions 12/14, Lemma 15).

A signed word ``w = A_1^{ι_1} ... A_k^{ι_k}`` over ``Σ̄ = Σ ∪ Σ^{-1}``
is a *q-walk* when its partial sign sums stay within ``[0, |q|]``, end
at ``|q|``, and each letter matches the symbol of ``q`` at the position
the walk currently occupies (Definition 12): the walk wanders up and
down the word ``q`` and finally arrives at its end.

A path ``ε → ... → q`` in the prefix graph ``G_{q,V}`` induces a
q-walk ``(v_{p1})^{ε_1} (v_{p2})^{ε_2} ...`` (Example 13), and Lemma 15
says every q-walk reduces to ``q`` by cancelling adjacent ``A A^{-1}``
(the ``+/-`` reduction) or ``A^{-1} A`` (the ``-/+`` reduction) pairs.
The two reduction orders give the two inclusion bounds of Lemma 23.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.queries.path import PathQuery, signed_word

SignedLetter = Tuple[str, int]
SignedWord = Tuple[SignedLetter, ...]


def make_signed_word(pieces: Sequence[Tuple[PathQuery, int]]) -> SignedWord:
    """Concatenate views with signs into one signed word.

    ``(v, -1)`` contributes ``v`` reversed with all letters inverted
    (footnote 18).
    """
    word: List[SignedLetter] = []
    for path, sign in pieces:
        word.extend(signed_word(path, sign))
    return tuple(word)


def is_q_walk(word: SignedWord, query: PathQuery) -> bool:
    """Definition 12: check the three q-walk conditions."""
    length = len(query)
    height = 0
    for letter, sign in word:
        if sign == 1:
            if height >= length or query.letters[height] != letter:
                return False
            height += 1
        elif sign == -1:
            if height <= 0 or query.letters[height - 1] != letter:
                return False
            height -= 1
        else:
            raise QueryError(f"signs must be ±1, got {sign}")
        if not 0 <= height <= length:
            return False
    return height == length


def walk_height_profile(word: SignedWord) -> List[int]:
    """The partial sums ``Σ_{j<=i} ι_j`` — handy for debugging/tests."""
    heights = [0]
    for _, sign in word:
        heights.append(heights[-1] + sign)
    return heights


def reduce_plus_minus_once(word: SignedWord) -> Optional[SignedWord]:
    """One ``w A A^{-1} w' → w w'`` step (Definition 14), leftmost."""
    for i in range(len(word) - 1):
        (a, sa), (b, sb) = word[i], word[i + 1]
        if a == b and sa == 1 and sb == -1:
            return word[:i] + word[i + 2:]
    return None


def reduce_minus_plus_once(word: SignedWord) -> Optional[SignedWord]:
    """One ``w A^{-1} A w' → w w'`` step, leftmost."""
    for i in range(len(word) - 1):
        (a, sa), (b, sb) = word[i], word[i + 1]
        if a == b and sa == -1 and sb == 1:
            return word[:i] + word[i + 2:]
    return None


def reduce_to_query(
    word: SignedWord, query: PathQuery, mode: str = "+/-"
) -> List[SignedWord]:
    """Lemma 15: reduce a q-walk all the way to ``q`` using only the
    chosen reduction, returning the full trace (input first, ``q``
    last).

    Raises :class:`QueryError` when the input is not a q-walk or the
    reduction gets stuck (which Lemma 15 proves cannot happen).
    """
    if not is_q_walk(word, query):
        raise QueryError(f"{word!r} is not a q-walk for {query!r}")
    step = {"+/-": reduce_plus_minus_once, "-/+": reduce_minus_plus_once}.get(mode)
    if step is None:
        raise QueryError(f"mode must be '+/-' or '-/+', got {mode!r}")
    target = signed_word(query, 1)
    trace = [tuple(word)]
    current = tuple(word)
    while current != target:
        reduced = step(current)
        if reduced is None:
            raise QueryError(
                f"reduction stuck at {current!r}; Lemma 15 says this is impossible"
            )
        current = reduced
        trace.append(current)
    return trace


def format_signed_word(word: SignedWord) -> str:
    """``A.B⁻¹.C`` style rendering."""
    if not word:
        return "ε"
    return ".".join(letter + ("⁻¹" if sign < 0 else "") for letter, sign in word)
