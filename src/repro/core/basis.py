"""The component basis ``W`` and vector representations (Defs. 27–29).

Given the relevant views ``V`` and query ``q``, the paper collects the
connected components of all queries in ``V' = V ∪ {q}`` up to
isomorphism into ``W = {w_1, ..., w_k}`` and represents every query as
the vector of its component multiplicities: ``v = Σ_i a_i·w_i`` gives
``v⃗ = (a_1, ..., a_k)`` (Observation 28; the representation is unique
because components are deduplicated up to isomorphism).

Observation 30 then evaluates queries from basis counts::

    v(D) = Π_i  w_i(D) ^ v⃗(i)

with the paper's convention ``0^0 = 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DecisionError, UnsupportedQueryError
from repro.queries.cq import ConjunctiveQuery
from repro.structures.components import connected_components
from repro.structures.isomorphism import find_isomorphism, invariant_key
from repro.structures.structure import Structure


class ComponentBasis:
    """The ordered basis ``W`` of connected components.

    Representatives are concrete structures (frozen query components);
    their order is fixed at construction, so vectors are comparable.
    """

    __slots__ = ("components", "_buckets")

    def __init__(self, components: Sequence[Structure]):
        self.components: Tuple[Structure, ...] = tuple(components)
        self._buckets: Dict[tuple, List[int]] = {}
        for index, component in enumerate(self.components):
            self._buckets.setdefault(invariant_key(component), []).append(index)

    @classmethod
    def from_queries(cls, queries: Sequence[ConjunctiveQuery]) -> "ComponentBasis":
        """Definition 27: components of ``Σ_{v∈V'} v`` up to isomorphism.

        Queries must be boolean; a 0-ary atom anywhere is rejected
        because the component calculus (Lemma 4(1)/(2)) fails for it.
        """
        representatives: List[Structure] = []
        buckets: Dict[tuple, List[int]] = {}
        for query in queries:
            validate_for_component_basis(query)
            for component in connected_components(query.frozen_body()):
                key = invariant_key(component)
                bucket = buckets.setdefault(key, [])
                if not any(
                    find_isomorphism(component, representatives[i]) is not None
                    for i in bucket
                ):
                    bucket.append(len(representatives))
                    representatives.append(component)
        return cls(representatives)

    # ------------------------------------------------------------------
    # Vector representations
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """``k``, the paper's fixed name for ``|W|``."""
        return len(self.components)

    def index_of(self, component: Structure) -> Optional[int]:
        """Index of the basis element isomorphic to ``component``."""
        for index in self._buckets.get(invariant_key(component), ()):
            if find_isomorphism(component, self.components[index]) is not None:
                return index
        return None

    def vector(self, query: ConjunctiveQuery) -> Tuple[int, ...]:
        """Definition 29: component multiplicities of ``query`` over W.

        Raises :class:`DecisionError` when the query has a component
        outside the basis (it then was not part of the generating set).
        """
        validate_for_component_basis(query)
        counts = [0] * self.dimension
        for component in connected_components(query.frozen_body()):
            index = self.index_of(component)
            if index is None:
                raise DecisionError(
                    f"component {component!r} of {query!r} is not in the basis"
                )
            counts[index] += 1
        return tuple(counts)

    def vector_or_none(self, query: ConjunctiveQuery) -> Optional[Tuple[int, ...]]:
        try:
            return self.vector(query)
        except DecisionError:
            return None

    # ------------------------------------------------------------------
    # Observation 30
    # ------------------------------------------------------------------
    @staticmethod
    def evaluate_from_counts(
        basis_counts: Sequence[int], query_vector: Sequence[int]
    ) -> int:
        """``v(D) = Π_i w_i(D)^{v⃗(i)}`` with ``0^0 = 1``."""
        if len(basis_counts) != len(query_vector):
            raise DecisionError("count/vector dimension mismatch")
        result = 1
        for count, exponent in zip(basis_counts, query_vector):
            if exponent == 0:
                continue  # 0^0 = 1 convention: skip entirely
            result *= count ** exponent
        return result

    def __repr__(self) -> str:
        return f"ComponentBasis(k={self.dimension})"


def validate_for_component_basis(query: ConjunctiveQuery) -> None:
    """The Theorem 3 fragment: boolean CQs whose atoms have arity ≥ 1."""
    if not query.is_boolean():
        raise UnsupportedQueryError(
            f"the boolean-CQ decider needs boolean queries; got free "
            f"variables {query.free} (CQ determinacy with free variables "
            f"is the paper's open problem)"
        )
    if query.has_nullary_atom():
        raise UnsupportedQueryError(
            "queries with 0-ary atoms are outside the Theorem 3 fragment "
            "(Lemma 4(1)/(2) fail for nullary components)"
        )
