"""The paper's core results, executable.

* Theorem 3: :func:`decide_bag_determinacy` (+ rewriting / witness).
* Theorem 1: :func:`decide_path_determinacy` (+ rewriting engine and
  the Appendix-B counterexample).
* Corollary 33: :func:`connected_case`.
* Cross-validation: the refuter.
"""

from repro.core.basis import ComponentBasis, validate_for_component_basis
from repro.core.decision import (
    BooleanDeterminacyResult,
    connected_case,
    decide_bag_determinacy,
)
from repro.core.rewriting import (
    MonomialRewriting,
    integer_nth_root,
    rewriting_from_span,
)
from repro.core.goodbasis import GoodBasis, construct_good_basis, find_distinguishers
from repro.core.witness import (
    CounterexamplePair,
    VerificationReport,
    construct_counterexample,
)
from repro.core.pathdet import (
    CertificateStep,
    PathDeterminacyResult,
    PrefixGraph,
    appendix_b_counterexample,
    decide_path_determinacy,
)
from repro.core.qwalk import (
    format_signed_word,
    is_q_walk,
    make_signed_word,
    reduce_minus_plus_once,
    reduce_plus_minus_once,
    reduce_to_query,
    walk_height_profile,
)
from repro.core.pathrewriting import (
    PathRewritingEngine,
    incidence_matrix,
    relation_of_walk,
    rewrite_and_answer,
    view_matrices,
    word_matrix,
)
from repro.core.pathcontainment import containment_homomorphism, path_contained
from repro.core.workbench import ViewCatalog
from repro.core.report import render_report
from repro.core.setdet import (
    SetDeterminacyResult,
    decide_set_determinacy_boolean,
)
from repro.core.refuter import (
    Refutation,
    default_blocks,
    search_exhaustive_counterexample,
    search_lattice_counterexample,
)

__all__ = [
    "ComponentBasis",
    "validate_for_component_basis",
    "BooleanDeterminacyResult",
    "connected_case",
    "decide_bag_determinacy",
    "MonomialRewriting",
    "integer_nth_root",
    "rewriting_from_span",
    "GoodBasis",
    "construct_good_basis",
    "find_distinguishers",
    "CounterexamplePair",
    "VerificationReport",
    "construct_counterexample",
    "CertificateStep",
    "PathDeterminacyResult",
    "PrefixGraph",
    "appendix_b_counterexample",
    "decide_path_determinacy",
    "format_signed_word",
    "is_q_walk",
    "make_signed_word",
    "reduce_minus_plus_once",
    "reduce_plus_minus_once",
    "reduce_to_query",
    "walk_height_profile",
    "PathRewritingEngine",
    "incidence_matrix",
    "relation_of_walk",
    "rewrite_and_answer",
    "view_matrices",
    "word_matrix",
    "ViewCatalog",
    "containment_homomorphism",
    "path_contained",
    "render_report",
    "SetDeterminacyResult",
    "decide_set_determinacy_boolean",
    "Refutation",
    "default_blocks",
    "search_exhaustive_counterexample",
    "search_lattice_counterexample",
]
