"""Containment of path queries — footnote 14 made executable.

Footnote 14 of the paper observes that for path queries *containment*
under set semantics trivially coincides with containment under bag
semantics.  The reason is even stronger than the footnote lets on:

    For non-empty path queries Λ, Λ' (with their two free variables),
    Λ' ⊆ Λ — under either semantics — **iff Λ' = Λ as words**.

Proof: a containment mapping is a homomorphism from the frozen body of
Λ (a simple directed path spelling its word) into the frozen body of
Λ' fixing both endpoints.  The image positions ``p_0 = 0, ..., p_n =
|Λ'|`` must satisfy ``p_{i+1} = p_i + 1`` (the only edges go forward),
so the map is the identity walk and the words coincide. ∎

This module exposes the check plus the witnessing homomorphism test,
and the bag-side sanity check used in tests (answers compared on
random databases).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import QueryError
from repro.hom.search import iter_homomorphisms
from repro.queries.path import PathQuery


def path_contained(inner: PathQuery, outer: PathQuery) -> bool:
    """``inner ⊆ outer`` (both semantics coincide): word equality.

    >>> from repro.queries.parser import parse_path
    >>> path_contained(parse_path("A.B"), parse_path("A.B"))
    True
    >>> path_contained(parse_path("A.B"), parse_path("A"))
    False
    """
    if inner.is_empty() or outer.is_empty():
        raise QueryError("containment is defined for non-empty path queries")
    return inner.letters == outer.letters


def containment_homomorphism(inner: PathQuery, outer: PathQuery) -> Optional[dict]:
    """The endpoint-fixing homomorphism witnessing containment, or
    ``None``.  Provided so tests can confirm the word-equality
    characterization against the homomorphism definition."""
    if inner.is_empty() or outer.is_empty():
        raise QueryError("containment is defined for non-empty path queries")
    source = outer.frozen_path(tag="o")
    target = inner.frozen_path(tag="i")
    start_source, end_source = ("o", 0), ("o", len(outer))
    start_target, end_target = ("i", 0), ("i", len(inner))
    for hom in iter_homomorphisms(source, target):
        if hom[start_source] == start_target and hom[end_source] == end_target:
            return hom
    return None
