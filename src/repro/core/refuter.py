"""Randomized / exhaustive counterexample search ("the refuter").

Determinacy quantifies over *all* pairs of finite structures, so a
failed determinacy can in principle be demonstrated by search.  The
refuter is the library's independent cross-check of the symbolic
deciders (DESIGN.md §2 substitution for the abstract quantifier; the
E12 experiment measures agreement):

* :func:`search_lattice_counterexample` — the effective strategy for
  boolean queries.  Fix connected building blocks ``B_1..B_m`` (by
  default: the component basis of the instance, which Lemma 41 shows is
  enough *when combined with a good basis*; callers may add random
  blocks).  For every pair of small multiplicity vectors ``a, a'``,
  compare all view answers on ``D_a = Σ a_i B_i`` vs ``D_{a'}`` —
  answers are computed from a precomputed count matrix via Lemma 4, so
  the inner loop is pure integer arithmetic.
* :func:`search_exhaustive_counterexample` — enumerate *all* structure
  pairs up to a domain-size bound (tiny schemas only); sound and
  complete within the bound, used to validate the others.

A returned :class:`Refutation` is always re-verified by direct
evaluation before being handed to the caller.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hom.count import count_homs
from repro.queries.cq import ConjunctiveQuery
from repro.session import SolverSession, resolve_session
from repro.queries.evaluation import evaluate_boolean
from repro.structures.components import connected_components
from repro.structures.expression import SumExpression, as_expression
from repro.structures.generators import enumerate_structures, random_connected_structure
from repro.structures.schema import Schema
from repro.structures.structure import Structure


@dataclass
class Refutation:
    """A concrete pair witnessing non-determinacy, with its answers."""

    left: Structure
    right: Structure
    view_answers: Tuple[Tuple[int, int], ...]
    query_answers: Tuple[int, int]

    @property
    def ok(self) -> bool:
        views_agree = all(a == b for a, b in self.view_answers)
        return views_agree and self.query_answers[0] != self.query_answers[1]


def _verify(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
    left: Structure,
    right: Structure,
) -> Optional[Refutation]:
    view_answers = tuple(
        (evaluate_boolean(v, left), evaluate_boolean(v, right)) for v in views
    )
    query_answers = (evaluate_boolean(query, left), evaluate_boolean(query, right))
    refutation = Refutation(left, right, view_answers, query_answers)
    return refutation if refutation.ok else None


def search_lattice_counterexample(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
    blocks: Optional[Sequence[Structure]] = None,
    max_multiplicity: int = 3,
    extra_random_blocks: int = 0,
    rng: Optional[random.Random] = None,
    max_pairs: int = 200_000,
    session: Optional[SolverSession] = None,
) -> Optional[Refutation]:
    """Search ``spanN(blocks)`` for a counterexample pair.

    Answers on ``Σ a_i B_i`` are evaluated per query component ``c`` as
    ``Σ_i a_i·|hom(c, B_i)|`` and multiplied — no structure is built
    until a hit is found.  Block counts run under ``session``, resolved
    lazily *per call* (never captured at import time), so a store or
    strategy configured after this module was imported is honoured.
    """
    rng = rng or random.Random(0xBEEF)
    if blocks is None:
        blocks = default_blocks(views, query)
    blocks = list(blocks)
    if extra_random_blocks:
        schema = _joint_schema(views, query)
        if any(s.arity >= 2 for s in schema):
            for _ in range(extra_random_blocks):
                blocks.append(
                    random_connected_structure(schema, rng.randint(1, 3), rng=rng)
                )

    engine = resolve_session(session).engine
    # Precompute per-component block counts for every query involved.
    all_queries = list(views) + [query]
    component_lists = [connected_components(q.frozen_body()) for q in all_queries]
    block_counts: List[List[List[int]]] = [
        [[count_homs(c, b, engine) for b in blocks] for c in comps]
        for comps in component_lists
    ]

    def answers(multiplicities: Tuple[int, ...]) -> Tuple[int, ...]:
        result = []
        for counts in block_counts:
            value = 1
            for per_block in counts:
                value *= sum(a * n for a, n in zip(multiplicities, per_block))
                if value == 0:
                    break
            result.append(value)
        return tuple(result)

    vectors = list(
        itertools.product(range(max_multiplicity + 1), repeat=len(blocks))
    )
    profiles: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    pairs_checked = 0
    for multiplicities in vectors:
        values = answers(multiplicities)
        view_values, query_value = values[:-1], values[-1]
        seen = profiles.get(view_values)
        if seen is not None and seen[1][0] != query_value:
            left = _build(seen[0], blocks)
            right = _build(multiplicities, blocks)
            verified = _verify(views, query, left, right)
            if verified is not None:
                return verified
        if seen is None:
            profiles[view_values] = (multiplicities, (query_value,))
        pairs_checked += 1
        if pairs_checked > max_pairs:
            break
    return None


def search_exhaustive_counterexample(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
    max_size: int = 2,
    max_pairs: int = 500_000,
) -> Optional[Refutation]:
    """Enumerate all structure pairs with domains up to ``max_size``.

    Exponential; only for tiny schemas, where it is a complete check
    below the bound.
    """
    schema = _joint_schema(views, query)
    structures: List[Structure] = []
    for structure in enumerate_structures(schema, max_size):
        structures.append(structure)
        if len(structures) ** 2 > max_pairs:
            break
    profiles: Dict[Tuple[int, ...], List[int]] = {}
    query_values: List[int] = []
    for index, structure in enumerate(structures):
        view_values = tuple(evaluate_boolean(v, structure) for v in views)
        query_values.append(evaluate_boolean(query, structure))
        bucket = profiles.setdefault(view_values, [])
        for other in bucket:
            if query_values[other] != query_values[index]:
                verified = _verify(views, query, structures[other], structure)
                if verified is not None:
                    return verified
        bucket.append(index)
    return None


def default_blocks(
    views: Sequence[ConjunctiveQuery], query: ConjunctiveQuery
) -> List[Structure]:
    """Connected components of all queries, deduplicated — the natural
    building blocks suggested by the Section 5 analysis."""
    from repro.structures.isomorphism import dedupe_up_to_isomorphism

    components: List[Structure] = []
    for q in list(views) + [query]:
        components.extend(connected_components(q.frozen_body()))
    return dedupe_up_to_isomorphism(components)


def _build(multiplicities: Tuple[int, ...], blocks: Sequence[Structure]) -> Structure:
    expression = SumExpression([
        (a, as_expression(b)) for a, b in zip(multiplicities, blocks)
    ])
    return expression.materialize(max_domain=100_000)


def _joint_schema(
    views: Sequence[ConjunctiveQuery], query: ConjunctiveQuery
) -> Schema:
    schema = query.schema()
    for view in views:
        schema = schema.union(view.schema())
    return schema
