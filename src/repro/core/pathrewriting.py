"""View-based rewriting for path queries (Sections 3.2–3.3).

Determinacy is only useful to a rewriting system if the query answer
can actually be *computed* from the view answers.  For path queries the
paper's proof is fully constructive: represent each view answer as an
incidence matrix ``M_v`` (Fact 18: ``v(D)[a_i, a_j] = M_v(i, j)``),
turn each into a linear relation ``H_v = graph(h_{M_v})`` on ``Q^n``,
compose along the q-walk (inverting where the walk steps backwards),
and — by Corollary 24 — the result *is* the graph of ``M_q``.  No view
matrix needs to be invertible: relations always invert.

:class:`PathRewritingEngine` packages this: feed it the view answer
matrices of an (unseen) database and it returns the query's full bag
answer ``M_q`` — multiplicities included.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import DecisionError
from repro.linalg.linrel import LinearRelation
from repro.linalg.matrix import QMatrix
from repro.queries.path import PathQuery
from repro.structures.multiset import Multiset
from repro.structures.structure import Structure
from repro.core.pathdet import PathDeterminacyResult
from repro.core.qwalk import SignedWord

Constant = Hashable


def incidence_matrix(
    database: Structure, relation: str, order: Sequence[Constant]
) -> QMatrix:
    """``M^D_R`` of Definition 16 over a fixed domain enumeration."""
    index = {constant: i for i, constant in enumerate(order)}
    size = len(order)
    rows = [[0] * size for _ in range(size)]
    for source, target in database.tuples(relation):
        rows[index[source]][index[target]] = 1
    return QMatrix(rows)


def word_matrix(
    database: Structure, word: PathQuery, order: Sequence[Constant]
) -> QMatrix:
    """``M^D_w = M_{R1} · M_{R2} · ...`` (Definition 17); equals the
    walk-count matrix of the word (Fact 18)."""
    result = QMatrix.identity(len(order))
    for letter in word.letters:
        result = result.matmul(incidence_matrix(database, letter, order))
    return result


def view_matrices(
    database: Structure,
    views: Sequence[PathQuery],
    order: Sequence[Constant],
) -> Dict[PathQuery, QMatrix]:
    """The view answers, in matrix form, of a database."""
    return {view: word_matrix(database, view, order) for view in views}


def relation_of_walk(
    walk: SignedWord,
    letter_matrices: Dict[str, QMatrix],
    dimension: int,
) -> LinearRelation:
    """``H_w`` for a signed word whose letters have known matrices.

    Composition follows Definition 19(4); with our diagrammatic
    :meth:`LinearRelation.compose` the fold is
    ``H ← H_letter ∘ H`` so that plain words satisfy
    ``H_w = graph(M_{α1} ··· M_{αm})`` (Observation 20).
    """
    relation = LinearRelation.identity(dimension)
    for letter, sign in walk:
        matrix = letter_matrices.get(letter)
        if matrix is None:
            raise DecisionError(f"no matrix supplied for letter {letter!r}")
        step = LinearRelation.graph_of(matrix)
        if sign == -1:
            step = step.inverse()
        relation = step.compose(relation)
    return relation


class PathRewritingEngine:
    """Answer a determined path query from view answer matrices only.

    >>> from repro.queries.parser import parse_path
    >>> from repro.core.pathdet import decide_path_determinacy
    >>> views = [parse_path('A.B.C'), parse_path('B.C'), parse_path('B.C.D')]
    >>> result = decide_path_determinacy(views, parse_path('A.B.C.D'))
    >>> engine = PathRewritingEngine(result)
    """

    def __init__(self, result: PathDeterminacyResult):
        if not result.determined:
            raise DecisionError(
                "cannot build a rewriting: the views do not determine the query"
            )
        self.result = result
        self.steps: List[Tuple[PathQuery, int]] = [
            (step.view, step.sign) for step in result.certificate
        ]

    def query_matrix(self, answers: Dict[PathQuery, QMatrix]) -> QMatrix:
        """Reconstruct ``M_q`` from the view matrices (Corollary 24).

        ``answers`` maps each view to its answer matrix on the hidden
        database; all matrices must share one dimension.
        """
        dimensions = {m.nrows for m in answers.values()}
        if len(dimensions) != 1:
            raise DecisionError(f"view matrices of mixed dimensions {dimensions}")
        (dimension,) = dimensions
        relation = LinearRelation.identity(dimension)
        for view, sign in self.steps:
            matrix = answers.get(view)
            if matrix is None:
                raise DecisionError(f"missing answer matrix for view {view!r}")
            step = LinearRelation.graph_of(matrix)
            if sign == -1:
                step = step.inverse()
            relation = step.compose(relation)
        recovered = relation.as_function_graph()
        if recovered is None:
            raise DecisionError(
                "composed relation is not a function graph; "
                "Corollary 24 guarantees this never happens for real "
                "view answers — inputs are inconsistent"
            )
        return recovered

    def answer(
        self,
        answers: Dict[PathQuery, QMatrix],
        order: Sequence[Constant],
    ) -> Multiset:
        """The full bag answer ``q(D)`` as a multiset of pairs."""
        matrix = self.query_matrix(answers)
        counts: Dict[Tuple[Constant, Constant], int] = {}
        for i, source in enumerate(order):
            for j, target in enumerate(order):
                value = matrix.entry(i, j)
                if value != 0:
                    if value.denominator != 1 or value < 0:
                        raise DecisionError(
                            f"reconstructed multiplicity {value} is not a natural "
                            f"number; inconsistent view answers"
                        )
                    counts[(source, target)] = value.numerator
        return Multiset(counts)


def rewrite_and_answer(
    views: Sequence[PathQuery],
    query: PathQuery,
    database: Structure,
) -> Multiset:
    """End-to-end demo helper: decide, build the engine, evaluate the
    views on ``database``, reconstruct the query answer — without ever
    running the query on the database."""
    from repro.core.pathdet import decide_path_determinacy

    result = decide_path_determinacy(views, query)
    if not result.determined:
        raise DecisionError("views do not determine the query")
    engine = PathRewritingEngine(result)
    order = sorted(database.domain(), key=repr)
    answers = view_matrices(database, list(views), order)
    return engine.answer(answers, order)
