"""Batch determinacy analysis against a fixed view catalog.

A rewriting system doesn't decide one instance; it holds a *catalog* of
materialized counting views and answers a stream of queries.  Most of
the Theorem 3 pipeline cost is per-(view, query) containment checks and
per-component hom counts — all reusable.  :class:`ViewCatalog` keeps:

* frozen bodies of the views (computed once);
* a shared compiled counting engine (repro.hom.engine.HomEngine)
  threaded through every decision;
* a cache of decided queries (keyed by the query object);
* the roster of determined queries with their rewritings — i.e. the
  part of the workload this catalog can serve.

This is the application surface the "novelty" band points at: no OSS
determinacy checker for CQ rewriting tools exists; this class is the
shape such a tool would consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DecisionError
from repro.queries.cq import ConjunctiveQuery
from repro.core.basis import validate_for_component_basis
from repro.core.decision import BooleanDeterminacyResult, decide_bag_determinacy
from repro.core.rewriting import MonomialRewriting
from repro.session import SolverSession


class ViewCatalog:
    """A fixed set of boolean counting views, ready to judge queries.

    Decisions run under one :class:`~repro.session.SolverSession` —
    a private one by default, or a caller-provided session so several
    catalogs (or a catalog plus ad-hoc decisions) share memo state and
    a persistent store.

    >>> from repro.queries.parser import parse_boolean_cq
    >>> catalog = ViewCatalog([parse_boolean_cq("R(x,y)")])
    >>> catalog.can_answer(parse_boolean_cq("R(x,y), R(u,v)"))
    True
    """

    def __init__(self, views: Sequence[ConjunctiveQuery],
                 session: Optional[SolverSession] = None):
        for view in views:
            validate_for_component_basis(view)
        self.views: Tuple[ConjunctiveQuery, ...] = tuple(views)
        self.session = session if session is not None else SolverSession()
        self._decisions: Dict[ConjunctiveQuery, BooleanDeterminacyResult] = {}

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, query: ConjunctiveQuery) -> BooleanDeterminacyResult:
        """Decide (and cache) whether the catalog determines ``query``."""
        cached = self._decisions.get(query)
        if cached is None:
            cached = decide_bag_determinacy(self.views, query,
                                            session=self.session)
            self._decisions[query] = cached
        return cached

    def can_answer(self, query: ConjunctiveQuery) -> bool:
        return self.decide(query).determined

    def rewriting(self, query: ConjunctiveQuery) -> MonomialRewriting:
        """The rewriting serving ``query``; raises when undetermined."""
        result = self.decide(query)
        if not result.determined:
            raise DecisionError(
                f"the catalog does not determine {query!r}; "
                f"call coverage_report for alternatives"
            )
        return result.rewriting()

    # ------------------------------------------------------------------
    # Workload analysis
    # ------------------------------------------------------------------
    def partition_workload(
        self, queries: Iterable[ConjunctiveQuery]
    ) -> Tuple[List[ConjunctiveQuery], List[ConjunctiveQuery]]:
        """Split a workload into (answerable, unanswerable)."""
        answerable: List[ConjunctiveQuery] = []
        unanswerable: List[ConjunctiveQuery] = []
        for query in queries:
            (answerable if self.can_answer(query) else unanswerable).append(query)
        return answerable, unanswerable

    def missing_views_hint(self, query: ConjunctiveQuery) -> List[str]:
        """Actionable hints for an unanswerable query: which basis
        directions the current views fail to pin down."""
        result = self.decide(query)
        if result.determined:
            return []
        from repro.linalg.orthogonal import integer_orthogonal_witness

        direction = integer_orthogonal_witness(
            result.view_vectors, result.query_vector
        )
        hints: List[str] = []
        if direction is not None:
            for coefficient, component in zip(direction, result.basis.components):
                if coefficient != 0:
                    facts = ", ".join(sorted(str(f) for f in component.facts()))
                    hints.append(
                        f"count of component [{facts}] is unconstrained "
                        f"(blind direction weight {coefficient})"
                    )
        uncovered = [v for v in result.views if v not in result.relevant_views]
        if uncovered:
            hints.append(
                f"{len(uncovered)} view(s) are irrelevant to this query "
                f"(q ⊄set v) and contribute nothing"
            )
        return hints

    def coverage_report(
        self, queries: Sequence[ConjunctiveQuery]
    ) -> Dict[str, object]:
        """Summary statistics for a workload against this catalog."""
        answerable, unanswerable = self.partition_workload(queries)
        return {
            "views": len(self.views),
            "queries": len(queries),
            "answerable": len(answerable),
            "unanswerable": len(unanswerable),
            "coverage": (len(answerable) / len(queries)) if queries else 1.0,
        }

    # ------------------------------------------------------------------
    # Catalog evolution
    # ------------------------------------------------------------------
    def with_view(self, view: ConjunctiveQuery) -> "ViewCatalog":
        """A new catalog with one more view (decisions recomputed lazily;
        determinacy is monotone, so answerable queries stay answerable).
        The counting session is shared — component counts already
        memoized for this catalog serve the evolved one too."""
        return ViewCatalog(list(self.views) + [view], session=self.session)

    def minimal_subcatalog(
        self, queries: Sequence[ConjunctiveQuery]
    ) -> Optional["ViewCatalog"]:
        """A minimal-size view subset still answering every query in
        ``queries``, or ``None`` when even the full catalog cannot.

        Exhaustive over subsets (the catalog sizes this library targets
        are small); greedy would not be minimal.
        """
        import itertools

        full_answerable, missing = self.partition_workload(queries)
        if missing:
            return None
        for size in range(len(self.views) + 1):
            for combo in itertools.combinations(range(len(self.views)), size):
                candidate = ViewCatalog([self.views[i] for i in combo],
                                        session=self.session)
                answerable, missing = candidate.partition_workload(queries)
                if not missing:
                    return candidate
        return None  # pragma: no cover — the full set always works here

    def __len__(self) -> int:
        return len(self.views)

    def __repr__(self) -> str:
        return f"ViewCatalog({len(self.views)} views, {len(self._decisions)} decided)"
