"""The Theorem 3 decision procedure for boolean CQ bag-determinacy.

Pipeline (Sections 4–7 of the paper):

1. ``V = {v ∈ V0 | q ⊆set v}``   — Definition 25, via Chandra–Merlin
   homomorphism checks (views outside ``V`` may answer 0 freely and
   carry no information the span test can use);
2. ``W`` — the component basis of ``V ∪ {q}`` (Definition 27);
3. vector representations ``v⃗, q⃗`` (Definition 29);
4. the Main Lemma 31 test: ``V0 →bag q  ⟺  q⃗ ∈ span{v⃗ | v ∈ V}``.

The verdict carries its certificate: span coefficients become a
:class:`~repro.core.rewriting.MonomialRewriting`; a failed span test
exposes a :meth:`~BooleanDeterminacyResult.witness` constructor that
builds an explicit counterexample pair ``(D, D')`` via Lemmas 40/41.

Corollary 33 (all queries connected ⇒ determinacy iff ``q`` is
isomorphic to some view) falls out as a special case and is exposed
separately for clarity and for the E3 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from repro.errors import DecisionError
from repro.hom.containment import views_containing
from repro.hom.engine import HomEngine
from repro.linalg.span import span_coefficients
from repro.session import SolverSession, resolve_session
from repro.queries.cq import ConjunctiveQuery
from repro.core.basis import ComponentBasis, validate_for_component_basis
from repro.core.rewriting import MonomialRewriting, rewriting_from_span
from repro.structures.isomorphism import are_isomorphic


@dataclass
class BooleanDeterminacyResult:
    """Outcome of :func:`decide_bag_determinacy`.

    Attributes
    ----------
    determined:
        Whether ``V0 →bag q``.
    relevant_views:
        ``V`` of Definition 25 (the views ⊇set q), in input order.
    basis:
        The component basis ``W``.
    view_vectors / query_vector:
        Vector representations over ``W``.
    coefficients:
        Span coefficients when determined, else ``None``.
    session:
        The :class:`~repro.session.SolverSession` the decision ran
        under.  Witness construction reuses it (same engine memo, same
        compiled targets), and callers can read aggregated counting
        statistics from it.  This replaces the old private ``_engine``
        back-channel.
    """

    query: ConjunctiveQuery
    views: Tuple[ConjunctiveQuery, ...]
    relevant_views: Tuple[ConjunctiveQuery, ...]
    basis: ComponentBasis
    view_vectors: Tuple[Tuple[int, ...], ...]
    query_vector: Tuple[int, ...]
    coefficients: Optional[Tuple[Fraction, ...]]
    session: Optional[SolverSession] = field(default=None, repr=False,
                                             compare=False)
    _witness_cache: object = field(default=None, repr=False, compare=False)

    @property
    def determined(self) -> bool:
        return self.coefficients is not None

    def rewriting(self) -> MonomialRewriting:
        """The monomial rewriting certificate (Lemma 31 ⇐ / Appendix D)."""
        if self.coefficients is None:
            raise DecisionError("no rewriting: the views do not determine the query")
        return rewriting_from_span(self.query, self.relevant_views, self.coefficients)

    def witness(self, rng=None, distinguisher_budget: int = 5000):
        """An explicit counterexample pair (Lemmas 40/41/55/56/57).

        Returns a :class:`repro.core.witness.CounterexamplePair` whose
        ``verify()`` re-checks conditions (A), (B), (B0) exactly.
        """
        if self.coefficients is not None:
            raise DecisionError("no witness: the views do determine the query")
        if self._witness_cache is None:
            from repro.core.witness import construct_counterexample

            self._witness_cache = construct_counterexample(
                self, rng=rng, distinguisher_budget=distinguisher_budget,
                session=self.session,
            )
        return self._witness_cache

    def to_record(self):
        """A JSON-safe summary of the verdict (batch wire format).

        Everything here is canonical: view indices refer to the input
        order, vectors follow the construction order of the basis
        (deterministic — components are collected in query order), and
        rational coefficients are rendered as exact ``p/q`` strings.
        """
        relevant = set(self.relevant_views)
        record = {
            "determined": self.determined,
            "relevant": [index for index, view in enumerate(self.views)
                         if view in relevant],
            "basis_dimension": self.basis.dimension,
            "query_vector": list(self.query_vector),
            "view_vectors": [list(vector) for vector in self.view_vectors],
            "coefficients": None,
        }
        if self.coefficients is not None:
            record["coefficients"] = [str(c) for c in self.coefficients]
        return record

    def explain(self) -> str:
        """One-paragraph human-readable account of the verdict."""
        lines = [
            f"views |V0| = {len(self.views)}, relevant |V| = "
            f"{len(self.relevant_views)}, basis k = {self.basis.dimension}",
            f"q⃗ = {list(self.query_vector)}",
        ]
        for view, vec in zip(self.relevant_views, self.view_vectors):
            lines.append(f"v⃗ = {list(vec)}   for view {view!r}")
        if self.determined:
            lines.append("q⃗ ∈ span{v⃗}: DETERMINED; rewriting:")
            lines.append("  " + self.rewriting().explain())
        else:
            lines.append("q⃗ ∉ span{v⃗}: NOT determined "
                         "(call .witness() for a counterexample pair)")
        return "\n".join(lines)


def decide_bag_determinacy(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
    engine: Optional[HomEngine] = None,
    session: Optional[SolverSession] = None,
) -> BooleanDeterminacyResult:
    """Decide ``V0 →bag q`` for boolean conjunctive queries (Theorem 3).

    ``session`` is the solver context the containment probes and, later,
    witness construction run under; it defaults to the process-wide
    session so repeated decisions over the same catalog reuse every
    compiled target and memoized count.  ``engine`` is the pre-session
    calling convention and is adopted into a session when given.

    >>> from repro.queries.parser import parse_boolean_cq
    >>> q = parse_boolean_cq("R(x,y)")
    >>> decide_bag_determinacy([q], q).determined
    True
    """
    session = resolve_session(session, engine)
    validate_for_component_basis(query)
    for view in views:
        validate_for_component_basis(view)

    relevant = tuple(views_containing(query, views, session=session))
    basis = ComponentBasis.from_queries(list(relevant) + [query])
    view_vectors = tuple(basis.vector(view) for view in relevant)
    query_vector = basis.vector(query)
    coefficients = span_coefficients(view_vectors, query_vector)

    return BooleanDeterminacyResult(
        query=query,
        views=tuple(views),
        relevant_views=relevant,
        basis=basis,
        view_vectors=view_vectors,
        query_vector=query_vector,
        coefficients=tuple(coefficients) if coefficients is not None else None,
        session=session,
    )


def connected_case(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
) -> bool:
    """Corollary 33: with every query connected, ``V0 →bag q`` iff
    ``q`` is (isomorphic to) one of the views.

    Raises :class:`DecisionError` when some query is not connected.
    """
    from repro.structures.components import is_connected

    validate_for_component_basis(query)
    frozen_query = query.frozen_body()
    if not is_connected(frozen_query):
        raise DecisionError("Corollary 33 applies to connected queries only")
    for view in views:
        validate_for_component_basis(view)
        if not is_connected(view.frozen_body()):
            raise DecisionError("Corollary 33 applies to connected queries only")
    return any(are_isomorphic(frozen_query, v.frozen_body()) for v in views)
