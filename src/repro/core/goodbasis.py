"""Good sets of basis structures — Lemma 40, Steps 1–4.

Given the basis ``W = {w_1..w_k}`` and the fixed query ``q``, a set
``S`` of ``k`` structures is *good* (Definition 38) when

* it is *decent* (Definition 35): every irrelevant view
  ``v ∈ V0 \\ V`` answers 0 on every ``s ∈ S``, and
* its evaluation matrix ``M_S(i,j) = |hom(w_i, s_j)|`` is nonsingular.

The paper's four-step construction, reproduced here:

* **Step 1** — a finite set ``S⁽¹⁾`` of structures distinguishing every
  pair of (non-isomorphic) basis components by hom counts.  Existence
  is Lovász's Lemma 43; we *search*: heuristic candidates first
  (the components themselves, their products, the all-loops unit),
  then seeded random structures of growing size.
* **Step 2** — the radix merge ``s⁽²⁾ = Σ_i T^i s⁽¹⁾_i`` with ``T``
  exceeding every entry of ``M_{S⁽¹⁾}``; distinct components now get
  distinct counts (Observation 45, a radix-``T`` argument).
* **Step 3** — Vandermonde powers ``s⁽³⁾_j = (s⁽²⁾)^{j-1}``; the
  evaluation matrix becomes a Vandermonde matrix of the pairwise
  distinct counts, hence nonsingular (Lemma 46).
* **Step 4** — decency fix ``s⁽⁴⁾_j = s⁽³⁾_j × q``: multiplying by the
  (frozen) query kills every view with ``v(q) = 0`` — exactly the
  irrelevant ones — and scales row ``i`` by ``w_i(q) > 0``, preserving
  nonsingularity.

Everything is built as *lazy expressions*: ``(Σ T^i s_i)^{j-1}`` is
astronomically large materialized, while hom counts into it are cheap
symbolically (DESIGN.md §6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import DecisionError, SearchExhaustedError
from repro.hom.count import count_homs
from repro.hom.engine import HomEngine
from repro.hom.matrix import evaluation_matrix
from repro.session import SolverSession, resolve_session
from repro.linalg.matrix import QMatrix
from repro.queries.cq import ConjunctiveQuery
from repro.structures.expression import (
    LeafExpression,
    PowerExpression,
    ProductExpression,
    StructureExpression,
    SumExpression,
)
from repro.structures.operations import product, unit_structure
from repro.structures.schema import Schema
from repro.structures.generators import random_structure
from repro.structures.structure import Structure


@dataclass
class GoodBasis:
    """The output of the Lemma 40 construction.

    ``structures`` is the good set ``S`` (as lazy expressions, one per
    basis component), ``matrix`` its nonsingular evaluation matrix over
    the component basis, and the remaining fields expose the
    intermediate steps for inspection, testing and the E7 benchmarks.
    """

    components: Tuple[Structure, ...]
    structures: Tuple[StructureExpression, ...]
    matrix: QMatrix
    distinguishers: Tuple[Structure, ...]
    radix: int
    merged_counts: Tuple[int, ...]

    @property
    def dimension(self) -> int:
        return len(self.components)


def construct_good_basis(
    components: Sequence[Structure],
    query: ConjunctiveQuery,
    irrelevant_views: Sequence[ConjunctiveQuery] = (),
    rng: Optional[random.Random] = None,
    distinguisher_budget: int = 5000,
    engine: Optional[HomEngine] = None,
    session: Optional[SolverSession] = None,
) -> GoodBasis:
    """Build a good set of basis structures for ``components`` and ``q``.

    ``irrelevant_views`` are ``V0 \\ V``; decency against them is
    verified before returning.  All counting runs under ``session``
    (or an adopted ``engine``; default: the process-wide session).
    """
    engine = resolve_session(session, engine).engine
    rng = rng or random.Random(0x5EED)
    ambient = _ambient_schema(components, query, irrelevant_views)
    k = len(components)
    if k == 0:
        raise DecisionError("cannot build a good basis for an empty component set")

    # Step 4 multiplies row i by w_i(q); the paper guarantees w_i(q) > 0
    # because every basis component comes from V ∪ {q} (Definition 27),
    # each of whose members maps homomorphically into q.  Enforce that
    # precondition rather than emit a silently singular matrix.
    frozen_query_plain = query.frozen_body()
    for component in components:
        if count_homs(component, frozen_query_plain, engine) == 0:
            raise DecisionError(
                f"component {component!r} has no homomorphism into the "
                f"query; good bases are defined for the component basis "
                f"of V ∪ {{q}} only (Definition 27 / Step 4 of Lemma 40)"
            )

    # ------------------------------------------------------------- Step 1
    distinguishers = find_distinguishers(
        components, ambient, rng=rng, budget=distinguisher_budget, engine=engine
    )

    # ------------------------------------------------------------- Step 2
    step1_matrix = [
        [count_homs(w, s, engine) for s in distinguishers] for w in components
    ]
    radix = max((entry for row in step1_matrix for entry in row), default=0) + 1
    radix = max(radix, 2)
    merged = SumExpression([
        (radix ** (i + 1), LeafExpression(s))
        for i, s in enumerate(distinguishers)
    ])
    merged_counts = tuple(count_homs(w, merged, engine) for w in components)
    if len(set(merged_counts)) != k:
        raise DecisionError(
            "Observation 45 violated: radix merge failed to separate "
            "components — the distinguisher set is wrong"
        )

    # ------------------------------------------------------------- Step 3
    powers = [PowerExpression(merged, j) for j in range(k)]

    # ------------------------------------------------------------- Step 4
    frozen_query = query.frozen_body().with_schema(
        ambient.union(query.schema())
    )
    good = tuple(
        ProductExpression([p, LeafExpression(frozen_query)]) for p in powers
    )

    matrix = evaluation_matrix(list(components), list(good), engine)
    if not matrix.is_nonsingular():
        raise DecisionError(
            "evaluation matrix of S⁽⁴⁾ is singular — this contradicts "
            "Lemma 46 + Step 4 and indicates a counting bug"
        )
    for view in irrelevant_views:
        for s in good:
            if count_homs(view.frozen_body(), s, engine) != 0:
                raise DecisionError(
                    f"S is not decent: irrelevant view {view!r} answers "
                    f"non-zero on a basis structure"
                )

    return GoodBasis(
        components=tuple(components),
        structures=good,
        matrix=matrix,
        distinguishers=tuple(distinguishers),
        radix=radix,
        merged_counts=merged_counts,
    )


# ----------------------------------------------------------------------
# Step 1: the distinguisher search (Lemma 43 made constructive)
# ----------------------------------------------------------------------
def find_distinguishers(
    components: Sequence[Structure],
    ambient: Schema,
    rng: Optional[random.Random] = None,
    budget: int = 5000,
    engine: Optional[HomEngine] = None,
    session: Optional[SolverSession] = None,
) -> List[Structure]:
    """A finite set ``S⁽¹⁾`` with: for every pair ``w ≠ w'`` some
    ``s ∈ S⁽¹⁾`` has ``|hom(w, s)| ≠ |hom(w', s)|``.

    Lovász's Lemma 43 guarantees existence; we search candidates in a
    deterministic-then-random order.  Raises
    :class:`SearchExhaustedError` when the budget runs out (never
    observed on real inputs; the budget guards pathological schemas).
    """
    engine = resolve_session(session, engine).engine
    rng = rng or random.Random(0x5EED)
    chosen: List[Structure] = []
    pairs = [
        (i, j)
        for i in range(len(components))
        for j in range(i + 1, len(components))
    ]

    def separated(i: int, j: int) -> bool:
        return any(
            count_homs(components[i], s, engine) != count_homs(components[j], s, engine)
            for s in chosen
        )

    for i, j in pairs:
        if separated(i, j):
            continue
        found = _search_single_distinguisher(
            components[i], components[j], components, ambient, rng, budget, engine
        )
        chosen.append(found)
    if not chosen:
        # k == 1: any single structure will do; counts trivially
        # "separate" the empty set of pairs, but Step 2 needs a
        # non-empty S⁽¹⁾ whose count is positive for w to make the
        # merged counts meaningful.
        chosen.append(_self_candidate(components[0], ambient))
    return chosen


def _search_single_distinguisher(
    left: Structure,
    right: Structure,
    components: Sequence[Structure],
    ambient: Schema,
    rng: random.Random,
    budget: int,
    engine: Optional[HomEngine],
) -> Structure:
    for candidate in _candidate_stream(left, right, components, ambient, rng, budget):
        if count_homs(left, candidate, engine) != count_homs(right, candidate, engine):
            return candidate
    raise SearchExhaustedError(
        f"no distinguishing structure found for a component pair within "
        f"budget {budget}; increase distinguisher_budget"
    )


def _candidate_stream(
    left: Structure,
    right: Structure,
    components: Sequence[Structure],
    ambient: Schema,
    rng: random.Random,
    budget: int,
) -> Iterator[Structure]:
    # Deterministic heuristics first: the components themselves (the
    # count |hom(w, w)| ≥ 1 while |hom(w', w)| is often 0), the unit,
    # and pairwise products.
    yield _self_candidate(left, ambient)
    yield _self_candidate(right, ambient)
    yield unit_structure(ambient)
    for component in components:
        yield _self_candidate(component, ambient)
    if not left.schema().has_nullary() and not right.schema().has_nullary():
        yield product(left, right).with_schema(ambient)
    # Then seeded random structures of growing size and density.
    max_size = max(len(left.domain()), len(right.domain())) + 1
    produced = 0
    while produced < budget:
        size = rng.randint(1, max_size)
        density = rng.choice((0.15, 0.3, 0.5, 0.75))
        yield random_structure(ambient, size, density=density, rng=rng,
                               ensure_nonempty=True)
        produced += 1


def _self_candidate(component: Structure, ambient: Schema) -> Structure:
    return component.with_schema(ambient.union(component.schema))


def _ambient_schema(
    components: Sequence[Structure],
    query: ConjunctiveQuery,
    irrelevant_views: Sequence[ConjunctiveQuery],
) -> Schema:
    """Union of every schema in sight.

    The all-loops unit ``(s⁽²⁾)^0`` must carry loops *of all types*
    (paper Sec. 2.2) so that ``|hom(w, A^0)| = 1`` matches the
    ``0^0 = 1`` convention in the Vandermonde column of exponent 0.
    """
    ambient = query.schema()
    for component in components:
        ambient = ambient.union(component.schema)
    for view in irrelevant_views:
        ambient = ambient.union(view.schema())
    return ambient
