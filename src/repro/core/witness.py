"""Explicit counterexample pairs — Lemmas 41, 55, 56, 57.

When the span test of Lemma 31 fails, the paper does not merely assert
non-determinacy: Sections 5–7 *construct* two structures ``D, D'``
with

* (A)  ``q(D) ≠ q(D')``,
* (B)  ``v(D) = v(D')``  for every relevant view ``v ∈ V``,
* (B0) ``v(D) = v(D') = 0``  for every irrelevant view ``v ∈ V0 \\ V``.

This module executes that construction:

1. a *good* basis ``S`` (Lemma 40, :mod:`repro.core.goodbasis`);
2. an integer direction ``z`` orthogonal to every ``v⃗`` but not to
   ``q⃗`` (Fact 5);
3. the rational interior point ``p = M·1`` of the cone ``C``
   (Corollary 8) and the perturbation ``p' = t^z ∘ p`` for a rational
   ``t ≠ 1`` keeping ``p'`` inside ``C`` (Lemma 57);
4. the Lemma 55 scaling ``N`` making both coefficient vectors integral,
   giving ``D = Σ (Nα)_i s_i`` and ``D' = Σ (Nα')_i s_i``.

``D`` and ``D'`` are returned as lazy structure expressions (their
materialized sizes are usually astronomical); every claimed property is
*verified symbolically* — exact integer hom counts through Lemma 4 —
by :meth:`CounterexamplePair.verify`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Tuple

from repro.errors import DecisionError
from repro.hom.count import Cache, count_homs
from repro.hom.engine import HomEngine
from repro.linalg.cone import SimplicialCone, perturb
from repro.session import SolverSession, resolve_session
from repro.linalg.orthogonal import integer_orthogonal_witness
from repro.linalg.span import integerize
from repro.queries.cq import ConjunctiveQuery
from repro.core.basis import ComponentBasis
from repro.core.goodbasis import GoodBasis, construct_good_basis
from repro.structures.expression import StructureExpression, SumExpression


@dataclass
class VerificationReport:
    """Outcome of exact re-verification of a counterexample pair."""

    query_answers: Tuple[int, int]
    view_answers: Tuple[Tuple[int, int], ...]
    irrelevant_answers: Tuple[Tuple[int, int], ...]
    basis_counts_match: bool

    @property
    def ok(self) -> bool:
        condition_a = self.query_answers[0] != self.query_answers[1]
        condition_b = all(left == right for left, right in self.view_answers)
        condition_b0 = all(left == 0 and right == 0
                           for left, right in self.irrelevant_answers)
        return (condition_a and condition_b and condition_b0
                and self.basis_counts_match)


@dataclass
class CounterexamplePair:
    """The pair ``(D, D')`` refuting ``V0 →bag q``, with provenance."""

    query: ConjunctiveQuery
    relevant_views: Tuple[ConjunctiveQuery, ...]
    irrelevant_views: Tuple[ConjunctiveQuery, ...]
    basis: ComponentBasis
    good_basis: GoodBasis
    direction: Tuple[int, ...]
    parameter: Fraction
    left_multiplicities: Tuple[int, ...]
    right_multiplicities: Tuple[int, ...]
    left: StructureExpression
    right: StructureExpression

    # ------------------------------------------------------------------
    # Answers (via Observation 30 over the evaluation matrix)
    # ------------------------------------------------------------------
    def basis_counts(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """``(w_i(D))_i`` and ``(w_i(D'))_i`` from the matrix —
        ``w_i(Σ a_j s_j) = Σ a_j M(i,j)`` by Lemma 4(1)/(2)."""
        matrix = self.good_basis.matrix
        left = matrix.matvec([Fraction(a) for a in self.left_multiplicities])
        right = matrix.matvec([Fraction(a) for a in self.right_multiplicities])
        return (tuple(int(v) for v in left), tuple(int(v) for v in right))

    def answers(self, query_vector: Sequence[int]) -> Tuple[int, int]:
        left_counts, right_counts = self.basis_counts()
        return (
            ComponentBasis.evaluate_from_counts(left_counts, query_vector),
            ComponentBasis.evaluate_from_counts(right_counts, query_vector),
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, cache: Cache = None) -> VerificationReport:
        """Re-check (A), (B), (B0) by *symbolic hom counting* on the
        actual structure expressions — independent of the linear
        algebra that produced the pair.  The default dict cache routes
        leaf counts through the *naive* recursive backtracker, keeping
        the audit independent of the compiled engine that produced the
        decision; pass a :class:`~repro.hom.engine.HomEngine` or a
        :class:`~repro.session.SolverSession` to trade that
        independence for speed."""
        if cache is None:
            cache = {}
        query_answers = (
            count_homs(self.query.frozen_body(), self.left, cache),
            count_homs(self.query.frozen_body(), self.right, cache),
        )
        view_answers = tuple(
            (count_homs(v.frozen_body(), self.left, cache),
             count_homs(v.frozen_body(), self.right, cache))
            for v in self.relevant_views
        )
        irrelevant_answers = tuple(
            (count_homs(v.frozen_body(), self.left, cache),
             count_homs(v.frozen_body(), self.right, cache))
            for v in self.irrelevant_views
        )
        counted_left = tuple(
            count_homs(w, self.left, cache) for w in self.basis.components
        )
        counted_right = tuple(
            count_homs(w, self.right, cache) for w in self.basis.components
        )
        matrix_left, matrix_right = self.basis_counts()
        basis_counts_match = (
            counted_left == matrix_left and counted_right == matrix_right
        )
        return VerificationReport(
            query_answers=query_answers,
            view_answers=view_answers,
            irrelevant_answers=irrelevant_answers,
            basis_counts_match=basis_counts_match,
        )

    def to_record(self, report: Optional[VerificationReport] = None):
        """A JSON-safe summary of the pair (batch wire format).

        Query answers are decimal strings — the materialized counts are
        routinely too large to be comfortable as JSON numbers for other
        consumers, even though Python itself would take them.
        """
        record = {
            "direction": list(self.direction),
            "parameter": str(self.parameter),
            "left_multiplicities": list(self.left_multiplicities),
            "right_multiplicities": list(self.right_multiplicities),
        }
        if report is not None:
            record["verified"] = report.ok
            record["query_answers"] = [str(a) for a in report.query_answers]
        return record

    def explain(self) -> str:
        left_counts, right_counts = self.basis_counts()
        return "\n".join([
            f"direction z = {list(self.direction)}, parameter t = {self.parameter}",
            f"D  = Σ a_i·s_i with a  = {list(self.left_multiplicities)}",
            f"D' = Σ a'_i·s_i with a' = {list(self.right_multiplicities)}",
            f"(w_i(D))  = {list(left_counts)}",
            f"(w_i(D')) = {list(right_counts)}",
        ])


def construct_counterexample(
    result,
    rng: Optional[random.Random] = None,
    distinguisher_budget: int = 5000,
    engine: Optional[HomEngine] = None,
    session: Optional[SolverSession] = None,
) -> CounterexamplePair:
    """Build the counterexample pair for a failed span test.

    ``result`` is a :class:`repro.core.decision.BooleanDeterminacyResult`
    with ``determined == False``; ``session`` is the solver context the
    construction counts under — defaulting to the result's own
    ``session`` field (so the good-basis search verifiably reuses the
    deciding engine's memo), then the process-wide session.
    """
    if result.coefficients is not None:
        raise DecisionError("the views determine the query; no counterexample exists")
    if session is None and engine is None:
        session = result.session
    session = resolve_session(session, engine)
    irrelevant = tuple(
        v for v in result.views if v not in set(result.relevant_views)
    )
    good = construct_good_basis(
        result.basis.components,
        result.query,
        irrelevant_views=irrelevant,
        rng=rng,
        distinguisher_budget=distinguisher_budget,
        session=session,
    )

    direction = integer_orthogonal_witness(result.view_vectors, result.query_vector)
    if direction is None:
        raise DecisionError(
            "span test failed but no orthogonal witness exists — "
            "inconsistent linear algebra"
        )

    cone = SimplicialCone(good.matrix)
    center = cone.interior_point()
    parameter = cone.perturbation_parameter(direction, center)
    perturbed = perturb(parameter, direction, center)
    if perturbed is None:
        raise DecisionError("perturbation produced no point")

    alpha = cone.coefficients(center)       # = all ones by construction
    alpha_prime = cone.coefficients(perturbed)
    if any(a < 0 for a in alpha_prime):
        raise DecisionError("perturbed point escaped the cone")

    scale_left, _ = integerize(alpha)
    scale_right, _ = integerize(alpha_prime)
    common = _lcm(scale_left, scale_right)
    left_multiplicities = tuple(int(a * common) for a in alpha)
    right_multiplicities = tuple(int(a * common) for a in alpha_prime)

    left = SumExpression(list(zip(left_multiplicities, good.structures)))
    right = SumExpression(list(zip(right_multiplicities, good.structures)))

    return CounterexamplePair(
        query=result.query,
        relevant_views=result.relevant_views,
        irrelevant_views=irrelevant,
        basis=result.basis,
        good_basis=good,
        direction=tuple(direction),
        parameter=parameter,
        left_multiplicities=left_multiplicities,
        right_multiplicities=right_multiplicities,
        left=left,
        right=right,
    )


def _lcm(a: int, b: int) -> int:
    from math import gcd
    return a // gcd(a, b) * b
