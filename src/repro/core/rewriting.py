"""Monomial rewritings: the constructive content of Lemma 31 (⇐).

When ``q⃗ = Σ_j α_j v⃗_j`` over the relevant views ``V``, Appendix D
shows how to *answer q from the view answers alone*::

    q(D) = Π_j  v_j(D)^{α_j}        when every v_j(D) > 0,
    q(D) = 0                        when some v ∈ V has v(D) = 0
                                    (Observation 26).

The exponents ``α_j`` are rational, so evaluation takes exact integer
roots; by Lemma 31 the result is guaranteed to be a natural number on
answer tuples coming from a real database.  On inconsistent inputs the
root extraction fails and we raise, rather than return nonsense.

This is the artefact a view-based query-answering system would cache:
determinacy plus an executable rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence, Tuple

from repro.errors import DecisionError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_boolean
from repro.structures.structure import Structure


def integer_nth_root(value: int, degree: int) -> int:
    """The exact ``degree``-th root of a non-negative int.

    Raises :class:`DecisionError` when the root is not integral.
    """
    if degree <= 0:
        raise DecisionError(f"root degree must be positive, got {degree}")
    if value < 0:
        raise DecisionError(f"cannot take an even-style root of {value}")
    if value in (0, 1) or degree == 1:
        return value
    low, high = 0, 1 << ((value.bit_length() + degree - 1) // degree + 1)
    while low < high:
        mid = (low + high) // 2
        if mid ** degree < value:
            low = mid + 1
        else:
            high = mid
    if low ** degree != value:
        raise DecisionError(f"{value} has no exact integer {degree}-th root")
    return low


@dataclass(frozen=True)
class MonomialRewriting:
    """An executable rewriting ``q(D) = Π_j v_j(D)^{α_j}``.

    ``views`` are the relevant views ``V`` (Definition 25) in a fixed
    order, ``exponents`` the matching rational ``α_j``.  Views with
    ``α_j = 0`` still participate in the zero guard: Observation 26
    applies to *all* of ``V``.
    """

    query: ConjunctiveQuery
    views: Tuple[ConjunctiveQuery, ...]
    exponents: Tuple[Fraction, ...]

    def __post_init__(self):
        if len(self.views) != len(self.exponents):
            raise DecisionError("one exponent per view, please")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, view_answers: Sequence[int]) -> int:
        """Answer ``q`` from the view answers (aligned with ``views``).

        >>> from repro.queries.parser import parse_boolean_cq
        >>> q = parse_boolean_cq("R(x,y)")
        >>> rw = MonomialRewriting(q, (q,), (Fraction(1),))
        >>> rw.evaluate([7])
        7
        """
        if len(view_answers) != len(self.views):
            raise DecisionError(
                f"expected {len(self.views)} view answers, got {len(view_answers)}"
            )
        for answer in view_answers:
            if not isinstance(answer, int) or answer < 0:
                raise DecisionError(f"view answers are naturals, got {answer!r}")
        if any(answer == 0 for answer in view_answers):
            return 0  # Observation 26
        # Common root degree: q(D)^r = Π v_j^{α_j · r} with integer powers.
        degree = 1
        for alpha in self.exponents:
            degree = _lcm(degree, alpha.denominator)
        numerator, denominator = 1, 1
        for answer, alpha in zip(view_answers, self.exponents):
            exponent = int(alpha * degree)
            if exponent >= 0:
                numerator *= answer ** exponent
            else:
                denominator *= answer ** (-exponent)
        if numerator % denominator != 0:
            raise DecisionError(
                "view answers are inconsistent with the rewriting "
                "(not from a single database?)"
            )
        return integer_nth_root(numerator // denominator, degree)

    def answer_on(self, database: Structure) -> int:
        """Evaluate the *views* on ``database`` and answer ``q`` from
        them — never touching ``q`` itself.  The round-trip test
        ``answer_on(D) == q(D)`` is the executable statement of
        determinacy."""
        view_answers = [evaluate_boolean(view, database) for view in self.views]
        return self.evaluate(view_answers)

    def as_mapping(self) -> Mapping[ConjunctiveQuery, Fraction]:
        return dict(zip(self.views, self.exponents))

    def explain(self) -> str:
        """Human-readable form of the rewriting."""
        if not self.views:
            return f"{_short(self.query)}(D) = 1   (empty query)"
        factors = []
        for view, alpha in zip(self.views, self.exponents):
            if alpha == 0:
                continue
            factors.append(f"{_short(view)}(D)^({alpha})")
        product = " * ".join(factors) if factors else "1"
        guard = ", ".join(_short(v) for v in self.views)
        return (
            f"{_short(self.query)}(D) = {product}"
            f"   [= 0 whenever any of {guard} answers 0]"
        )


def _short(query: ConjunctiveQuery) -> str:
    atoms = ", ".join(sorted(str(a) for a in query.atoms))
    return f"[{atoms}]"


def _lcm(a: int, b: int) -> int:
    from math import gcd
    return a // gcd(a, b) * b


def rewriting_from_span(
    query: ConjunctiveQuery,
    views: Sequence[ConjunctiveQuery],
    coefficients: Sequence[Fraction],
) -> MonomialRewriting:
    """Package span coefficients (``q⃗ = Σ α_j v⃗_j``) as a rewriting."""
    return MonomialRewriting(
        query=query,
        views=tuple(views),
        exponents=tuple(Fraction(c) for c in coefficients),
    )
