"""Markdown reports for determinacy instances.

``render_report(views, query)`` runs the full Theorem 3 pipeline and
renders everything a reviewer would want in one document: the instance,
the relevant views, the component basis and all vector representations,
and either the monomial rewriting (with a worked numeric round trip) or
the counterexample pair with its verified answer table.

Used by the ``repro-determinacy report`` CLI subcommand; also handy in
notebooks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_boolean
from repro.queries.printing import format_cq
from repro.structures.generators import random_structure
from repro.core.decision import BooleanDeterminacyResult, decide_bag_determinacy


def _safe_format(query: ConjunctiveQuery) -> str:
    try:
        return format_cq(query)
    except Exception:
        return repr(query)


def render_report(
    views: Sequence[ConjunctiveQuery],
    query: ConjunctiveQuery,
    rng: Optional[random.Random] = None,
    sample_databases: int = 3,
) -> str:
    """A self-contained markdown report for one determinacy instance."""
    rng = rng or random.Random(0x9E9047)
    result = decide_bag_determinacy(views, query)
    lines: List[str] = []
    lines.append("# Bag-determinacy report")
    lines.append("")
    lines.append(f"* query `q`: `{_safe_format(query)}`")
    for index, view in enumerate(views):
        lines.append(f"* view `v{index}`: `{_safe_format(view)}`")
    lines.append("")
    lines.append("## Pipeline (Theorem 3)")
    lines.append("")
    lines.append(
        f"* relevant views `V = {{v : q ⊆set v}}`: "
        f"{len(result.relevant_views)} of {len(views)}"
    )
    lines.append(f"* component basis size `k`: {result.basis.dimension}")
    lines.append(f"* `q⃗` = {list(result.query_vector)}")
    for view, vector in zip(result.relevant_views, result.view_vectors):
        lines.append(f"* `v⃗` = {list(vector)} for `{_safe_format(view)}`")
    lines.append("")

    if result.determined:
        lines.extend(_determined_section(result, rng, sample_databases))
    else:
        lines.extend(_refuted_section(result, rng))
    return "\n".join(lines)


def _determined_section(
    result: BooleanDeterminacyResult,
    rng: random.Random,
    sample_databases: int,
) -> List[str]:
    rewriting = result.rewriting()
    lines = ["## Verdict: DETERMINED", ""]
    lines.append("Monomial rewriting (Lemma 31 ⇐ / Appendix D):")
    lines.append("")
    lines.append(f"    {rewriting.explain()}")
    lines.append("")
    if sample_databases > 0:
        lines.append("Round trip on random databases (answer from views "
                      "vs direct evaluation):")
        lines.append("")
        lines.append("| database | from views | direct | match |")
        lines.append("|---|---|---|---|")
        schema = result.query.schema()
        for view in result.views:
            schema = schema.union(view.schema())
        for index in range(sample_databases):
            database = random_structure(schema, 4, 0.4, rng)
            from_views = rewriting.answer_on(database)
            direct = evaluate_boolean(result.query, database)
            match = "yes" if from_views == direct else "**NO**"
            lines.append(f"| #{index} | {from_views} | {direct} | {match} |")
        lines.append("")
    return lines


def _refuted_section(
    result: BooleanDeterminacyResult,
    rng: random.Random,
) -> List[str]:
    pair = result.witness(rng=rng)
    report = pair.verify()
    lines = ["## Verdict: NOT DETERMINED", ""]
    lines.append("Counterexample pair (Lemmas 40/41/55/56/57), as lazy "
                 "structure expressions over the good basis `S`:")
    lines.append("")
    for text_line in pair.explain().splitlines():
        lines.append(f"    {text_line}")
    lines.append("")
    lines.append("Exact verification:")
    lines.append("")
    lines.append("| query/view | answer on D | answer on D' | status |")
    lines.append("|---|---|---|---|")
    qa = report.query_answers
    lines.append(f"| `q` | {qa[0]} | {qa[1]} | "
                 f"{'differs (A) ✓' if qa[0] != qa[1] else '**FAIL**'} |")
    for view, (left, right) in zip(result.relevant_views, report.view_answers):
        status = "equal (B) ✓" if left == right else "**FAIL**"
        lines.append(f"| `{_safe_format(view)}` | {left} | {right} | {status} |")
    for view, (left, right) in zip(
        pair.irrelevant_views, report.irrelevant_answers
    ):
        status = "both zero (B0) ✓" if left == right == 0 else "**FAIL**"
        lines.append(f"| `{_safe_format(view)}` | {left} | {right} | {status} |")
    lines.append("")
    lines.append(f"All conditions hold: **{report.ok}**")
    lines.append("")
    return lines
